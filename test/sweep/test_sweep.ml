(* The sweep harness test suite, in four parts:

   1. A table-driven "mega-suite" over the small corner of the sweep
      grid: one generator walks every (family, parameter) row, runs
      the lemma pipeline on it — label counts through R and R-bar o R,
      right-closed-set and box counters, both 0-round deciders with
      their witnesses, the Lemma 15 failure bound, and the fixed-point
      verdict — and pins every value against a committed golden table
      (test/sweep/golden/megasuite.golden).  Regenerate with
      DUNE_GOLDEN_UPDATE=1 dune runtest; mismatches print 1-based
      line-numbered diffs.

   2. Resume/crash properties for Sweep.run: interrupting a sweep
      after k cells (via max_cells, the deterministic stand-in for a
      kill; scripts/sweep_smoke.sh does a real kill -9) and resuming
      yields a journal byte-identical to an uninterrupted run, and a
      journal whose tail was truncated mid-line is detected, cut back
      to the last complete record, and re-run to the same bytes.

   3. The cross-engine identity contract: for a cell that completes
      with status "ok" and no autopilot budget skips, the explicit and
      ZDD engines, 1 and 2 worker domains, and the certifying
      configuration all produce identical records outside the declared
      exceptions ("cell", "config", "wall_s", "certified", and —
      explicit vs ZDD — "engine_counters"; across domain counts only
      engine_counters.transport_cache_hits may differ).

   4. End-to-end CLI tests driving the real relimsweep, analyze_sweep
      and validate_json executables (paths in $RELIMSWEEP etc., set by
      the dune stanza): journal -> merged bench section ->
      --require-sweep validation, plus the unknown-section passthrough
      contract of the validator. *)

module J = Store.Json

let seq = Parallel.Pool.sequential

(* ------------------------------------------------------------------ *)
(* Golden-file plumbing (same conventions as test/core)                *)
(* ------------------------------------------------------------------ *)

let golden_build_dir = "golden"

let golden_source_dir () =
  match
    List.find_opt Sys.file_exists
      [
        (* cwd = _build/default/test/sweep under `dune runtest` *)
        "../../../../test/sweep/golden";
        (* cwd = project root under `dune exec test/sweep/test_sweep.exe` *)
        "test/sweep/golden";
      ]
  with
  | Some dir -> dir
  | None ->
      Alcotest.fail
        "cannot locate the source test/sweep/golden directory for \
         DUNE_GOLDEN_UPDATE"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let golden_diff expected actual =
  let lines s = Array.of_list (String.split_on_char '\n' s) in
  let e = lines expected and a = lines actual in
  let n = max (Array.length e) (Array.length a) in
  let buf = Buffer.create 256 in
  let shown = ref 0 in
  for i = 0 to n - 1 do
    let ei = if i < Array.length e then Some e.(i) else None in
    let ai = if i < Array.length a then Some a.(i) else None in
    if ei <> ai && !shown < 20 then begin
      incr shown;
      (match ei with
      | Some l ->
          Buffer.add_string buf (Printf.sprintf "  line %d: - %s\n" (i + 1) l)
      | None -> ());
      match ai with
      | Some l ->
          Buffer.add_string buf (Printf.sprintf "  line %d: + %s\n" (i + 1) l)
      | None -> ()
    end
  done;
  if !shown >= 20 then Buffer.add_string buf "  ... (more differences)\n";
  Buffer.contents buf

let check_golden name actual =
  let file = name ^ ".golden" in
  if Sys.getenv_opt "DUNE_GOLDEN_UPDATE" = Some "1" then begin
    write_file (Filename.concat (golden_source_dir ()) file) actual;
    Printf.printf "golden: regenerated %s\n" file
  end
  else
    let path = Filename.concat golden_build_dir file in
    if not (Sys.file_exists path) then
      Alcotest.failf
        "missing golden file test/sweep/golden/%s — generate it with \
         DUNE_GOLDEN_UPDATE=1 dune runtest"
        file
    else
      let expected = read_file path in
      if not (String.equal expected actual) then
        Alcotest.failf
          "%s differs from test/sweep/golden/%s (- expected, + actual):\n\
           %s\n\
           if the change is intended, refresh with DUNE_GOLDEN_UPDATE=1 dune \
           runtest"
          name file (golden_diff expected actual)

(* ------------------------------------------------------------------ *)
(* Part 1: the table-driven lemma mega-suite                           *)
(* ------------------------------------------------------------------ *)

(* The mega-suite pins engine counters, so the engine path must not
   depend on the CI leg: the ZDD toggle is pinned off for its duration
   (explicit-path counters are the ones in the golden; test/zdd pins
   the cross-path identities), the pool is explicitly sequential, and
   counters are snapshotted the moment the step returns — before
   fixed-point detection, whose certifier replay (RELIM_CERTIFY=1)
   re-enters the engine. *)
let with_zdd_pinned f =
  let prev = Sys.getenv_opt Relim.Parctl.zdd_env_var in
  Unix.putenv Relim.Parctl.zdd_env_var "0";
  Fun.protect
    ~finally:(fun () ->
      (* putenv cannot unset; "0" is equivalent to unset here. *)
      Unix.putenv Relim.Parctl.zdd_env_var (Option.value prev ~default:"0"))
    f

let mega_expand = 2e5
let mega_rc = 20_000

let budget_str f =
  match f () with
  | v -> v
  | exception Relim.Budget.Budget_exceeded { budget; _ } ->
      Printf.sprintf "budget(%s)" budget

(* Chain_n: the node diagram is an n-chain, so R-bar's right-closed
   family has exactly n members (suffixes) — the linear extreme of
   Lemma 8's order-ideal enumeration (same family as test/zdd). *)
let chain_problem n =
  let name i = Printf.sprintf "l%d" i in
  let names = List.init n name in
  let all = String.concat " " names in
  let node =
    String.concat "\n"
      (List.init n (fun i ->
           match List.filteri (fun j _ -> i + j >= n - 1) names with
           | [ only ] -> Printf.sprintf "%s %s" (name i) only
           | partners ->
               Printf.sprintf "%s [%s]" (name i) (String.concat " " partners)))
  in
  Relim.Parse.problem
    ~name:(Printf.sprintf "chain%d" n)
    ~node
    ~edge:(Printf.sprintf "[%s] [%s]" all all)

(* Antichain_k (complete-graph k-coloring on Delta = 2): the node
   diagram is a k-antichain, so the right-closed family has 2^k - 1
   members — the exponential extreme.  R-bar(antichain_k) is
   antichain_k itself. *)
let antichain_problem k =
  let name i = Printf.sprintf "c%d" i in
  let node =
    String.concat "\n"
      (List.init k (fun i -> Printf.sprintf "%s %s %s" (name i) (name i) (name i)))
  in
  let edge =
    String.concat "\n"
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun j ->
               if i < j then Some (Printf.sprintf "%s %s" (name i) (name j))
               else None)
             (List.init k Fun.id))
         (List.init k Fun.id))
  in
  Relim.Parse.problem ~name:(Printf.sprintf "antichain%d" k) ~node ~edge

(* One row = 11 pinned metrics: label counts through R and the full
   step, the explicit-path rc-set/box counters, the symbolic-engine
   axis (the same step under ~zdd:true, pinned as "identical" plus the
   engine's maxbox counters — the cross-engine identity of PR 10), both
   0-round deciders with their witness configurations, the Lemma 15
   randomized failure bound, and the fixed-point verdict.  Budget
   overruns are themselves pinned, as the (deterministic) name of the
   tripped budget — the two engines trip distinctly named budgets, and
   the symbolic rung completes rows the explicit path cannot. *)
let mega_row buf name p =
  let add metric value =
    Buffer.add_string buf (Printf.sprintf "%-21s | %-13s = %s\n" name metric value)
  in
  add "labels_in" (string_of_int (Relim.Problem.label_count p));
  add "labels_r"
    (budget_str (fun () ->
         string_of_int
           (Relim.Problem.label_count (Relim.Rounde.r p).Relim.Rounde.problem)));
  Relim.Rounde.reset_stats ();
  let explicit =
    match
      Relim.Rounde.step ~expand_limit:mega_expand ~rc_limit:mega_rc ~pool:seq
        ~zdd:false p
    with
    | { Relim.Rounde.problem = stepped; denotations } ->
        (* Snapshot before anything else touches the engine (see
           above). *)
        Ok
          ( Relim.Serialize.to_string stepped,
            Array.to_list denotations,
            Relim.Rounde.stats.Relim.Rounde.rc_sets,
            Relim.Rounde.stats.Relim.Rounde.boxes_emitted )
    | exception Relim.Budget.Budget_exceeded { budget; _ } -> Error budget
  in
  (match explicit with
  | Ok (stepped, _, rc, boxes) ->
      add "labels_step"
        (string_of_int
           (Relim.Problem.label_count (Relim.Serialize.of_string stepped)));
      add "rc_sets" (string_of_int rc);
      add "boxes_emitted" (string_of_int boxes)
  | Error budget ->
      let b = Printf.sprintf "budget(%s)" budget in
      add "labels_step" b;
      add "rc_sets" b;
      add "boxes_emitted" b);
  (* Symbolic axis: the same step on the ZDD engine ladder.  Where both
     engines complete, problems, denotations and rc_sets must agree
     byte-for-byte; engine_counters ([boxes_emitted], [maxbox_*]) are
     the documented per-engine exceptions, so they are pinned
     separately rather than compared. *)
  Relim.Rounde.reset_stats ();
  (match
     Relim.Rounde.step ~expand_limit:mega_expand ~rc_limit:mega_rc ~pool:seq
       ~zdd:true p
   with
  | { Relim.Rounde.problem = zstepped; denotations = zdenots } ->
      let s = Relim.Rounde.stats in
      let zrc = s.Relim.Rounde.rc_sets in
      let maxbox =
        Printf.sprintf "%d/%d/%d/%d" s.Relim.Rounde.maxbox_tuples
          s.Relim.Rounde.maxbox_cubes s.Relim.Rounde.maxbox_maximal
          s.Relim.Rounde.maxbox_enumerated
      in
      (match explicit with
      | Ok (stepped, denots, rc, _) ->
          if
            Relim.Serialize.to_string zstepped = stepped
            && Array.to_list zdenots = denots
            && zrc = rc
          then add "zdd_step" "identical"
          else add "zdd_step" "MISMATCH"
      | Error _ -> add "zdd_step" "completes");
      add "zdd_maxbox" maxbox
  | exception Relim.Budget.Budget_exceeded { budget; _ } ->
      add "zdd_step" (Printf.sprintf "budget(%s)" budget);
      add "zdd_maxbox" "-");
  let witness = function
    | Some m ->
        (* Multiset.to_string is one label per line; fold to one line. *)
        "solvable "
        ^ String.concat "+"
            (String.split_on_char '\n'
               (Relim.Multiset.to_string p.Relim.Problem.alpha m))
    | None -> "unsolvable"
  in
  add "zr_mirrored" (witness (Relim.Zeroround.solvable_mirrored p));
  add "zr_arbitrary"
    (budget_str (fun () ->
         witness (Relim.Zeroround.solvable_arbitrary_ports ~pool:seq p)));
  add "failure_bound"
    (budget_str (fun () ->
         match Relim.Zeroround.randomized_failure_bound ~limit:mega_expand p with
         | Some f -> Printf.sprintf "%.9g" f
         | None -> "solvable"));
  Relim.Fixedpoint.clear_cache ();
  add "fixed_point"
    (budget_str (fun () ->
         match
           Relim.Fixedpoint.detect ~max_steps:2 ~expand_limit:mega_expand
             ~pool:seq p
         with
         | Relim.Fixedpoint.Fixed_point _ -> "fixed-point"
         | Relim.Fixedpoint.Reaches_fixed_point (i, _) ->
             Printf.sprintf "reaches-fixed-point(%d)" i
         | Relim.Fixedpoint.No_fixed_point_found _ -> "none"))

let mega_rows () =
  List.init 8 (fun i ->
      let n = i + 2 in
      (Printf.sprintf "chain n=%d" n, chain_problem n))
  @ List.init 5 (fun i ->
        let k = i + 2 in
        (Printf.sprintf "antichain k=%d" k, antichain_problem k))
  @ List.map
      (fun c ->
        (Printf.sprintf "col d=2 c=%d" c, Lcl.Encodings.coloring ~delta:2 ~colors:c))
      [ 2; 3; 4; 5 ]
  @ List.map
      (fun d -> (Printf.sprintf "mis d=%d" d, Lcl.Encodings.mis ~delta:d))
      [ 2; 3; 4; 5 ]
  @ List.map
      (fun d ->
        (Printf.sprintf "so d=%d" d, Lcl.Encodings.sinkless_orientation ~delta:d))
      [ 2; 3; 4 ]
  @ List.map
      (fun d ->
        (Printf.sprintf "mm d=%d" d, Lcl.Encodings.maximal_matching ~delta:d))
      [ 2; 3; 4 ]
  @ List.map
      (fun (delta, a, x) ->
        ( Printf.sprintf "pi d=%d a=%d x=%d" delta a x,
          Core.Family.pi { Core.Family.delta; a; x } ))
      [ (3, 2, 0); (3, 3, 1); (4, 3, 1); (4, 4, 2); (5, 4, 2) ]
  @ List.map
      (fun (delta, a, x) ->
        ( Printf.sprintf "pi-plus d=%d a=%d x=%d" delta a x,
          Core.Family.pi_plus { Core.Family.delta; a; x } ))
      [ (4, 3, 1); (5, 4, 2) ]

let test_megasuite () =
  with_zdd_pinned @@ fun () ->
  let rows = mega_rows () in
  (* Self-check the acceptance floor before comparing: the table must
     pin at least 200 values across at least 4 distinct families. *)
  let families =
    List.sort_uniq compare
      (List.map (fun (n, _) -> List.hd (String.split_on_char ' ' n)) rows)
  in
  Alcotest.(check bool)
    "mega-suite covers >= 4 families" true
    (List.length families >= 4);
  let buf = Buffer.create 8192 in
  List.iter (fun (name, p) -> mega_row buf name p) rows;
  let out = Buffer.contents buf in
  let pinned =
    List.length
      (List.filter (fun l -> l <> "") (String.split_on_char '\n' out))
  in
  Alcotest.(check bool)
    (Printf.sprintf "mega-suite pins >= 200 values (got %d)" pinned)
    true (pinned >= 200);
  check_golden "megasuite" out

(* ------------------------------------------------------------------ *)
(* Part 2: resume / crash-recovery properties                          *)
(* ------------------------------------------------------------------ *)

(* Six cheap cells, one engine config, fixed clock: the reference
   journal for every byte-identity property. *)
let small_grid =
  {
    Sweep.families = [ Sweep.So; Sweep.Mm; Sweep.Col ];
    deltas = [ 2; 3 ];
    a_values = [ 0 ];
    x_values = [ 0 ];
    label_counts = [ 2 ];
    engines = [ { Sweep.zdd = false; domains = 1; certify = false } ];
  }

let tight_budgets = { Sweep.default_budgets with Sweep.ap_steps = 1; ap_beam = 2 }
let fixed_clock () = 0.

let run_small ?max_cells out =
  Sweep.run ~clock:fixed_clock ?max_cells ~budgets:tight_budgets ~out small_grid

let with_temp_journal f =
  let path = Filename.temp_file "test_sweep" ".jsonl" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* The uninterrupted reference run, computed once. *)
let reference =
  lazy
    (with_temp_journal (fun path ->
         let summary = run_small path in
         (summary, read_file path)))

let test_reference_run () =
  let summary, bytes = Lazy.force reference in
  Alcotest.(check int) "6 cells" 6 summary.Sweep.total;
  Alcotest.(check int) "all ran" 6 summary.Sweep.ran;
  Alcotest.(check int) "none served" 0 summary.Sweep.served;
  Alcotest.(check bool) "complete" true summary.Sweep.complete;
  Alcotest.(check bool) "no recovery" false summary.Sweep.recovered_tail;
  Alcotest.(check int)
    "journal = header + one line per cell" 7
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' bytes)))

let test_noop_rerun () =
  let _, bytes = Lazy.force reference in
  with_temp_journal (fun path ->
      write_file path bytes;
      let summary = run_small path in
      Alcotest.(check int) "nothing ran" 0 summary.Sweep.ran;
      Alcotest.(check int) "all served" 6 summary.Sweep.served;
      Alcotest.(check bool) "complete" true summary.Sweep.complete;
      Alcotest.(check string) "byte-identical no-op" bytes (read_file path))

(* Killing a sweep after k cells and resuming is byte-identical to the
   uninterrupted run.  max_cells stops the run at exactly the same
   place a kill between two journal flushes would (records are written
   and flushed one at a time); the mid-write kill — torn last line —
   is the truncation property below, and scripts/sweep_smoke.sh
   additionally does a real kill -9 on the binary. *)
let prop_resume_after_k_cells =
  QCheck.Test.make ~count:12 ~name:"interrupt after k cells + resume = no-op"
    QCheck.(int_bound 5)
    (fun k ->
      let _, expected = Lazy.force reference in
      with_temp_journal (fun path ->
          let first = run_small ~max_cells:k path in
          let resumed = run_small path in
          first.Sweep.ran = k
          && (not first.Sweep.complete)
          && resumed.Sweep.served = k
          && resumed.Sweep.ran = 6 - k
          && resumed.Sweep.complete
          && String.equal expected (read_file path)))

(* A journal whose tail was torn mid-write (kill -9, disk full, ...):
   chopping any suffix off the reference journal leaves at most one
   damaged trailing line; resuming truncates it, re-runs from the last
   complete record, and reproduces the reference bytes exactly. *)
let prop_resume_after_torn_tail =
  QCheck.Test.make ~count:20 ~name:"torn trailing line + resume = no-op"
    QCheck.(int_range 1 400)
    (fun chop ->
      let _, expected = Lazy.force reference in
      let chop = min chop (String.length expected - 1) in
      with_temp_journal (fun path ->
          write_file path (String.sub expected 0 (String.length expected - chop));
          let summary = run_small path in
          summary.Sweep.complete
          && String.equal expected (read_file path)))

let test_scan_detects_torn_tail () =
  let _, bytes = Lazy.force reference in
  let header_len = 1 + String.index bytes '\n' in
  with_temp_journal (fun path ->
      (* A header plus half a record: the damage must be detected and
         the keep-point must be the end of the header line. *)
      write_file path (String.sub bytes 0 (header_len + 25));
      let scan = Sweep.scan_journal path in
      Alcotest.(check bool) "tail flagged" true scan.Sweep.dropped_tail;
      Alcotest.(check int) "keep to header end" header_len scan.Sweep.keep_bytes;
      Alcotest.(check int)
        "no cells believed complete" 0
        (List.length scan.Sweep.completed))

let test_refuses_foreign_journal () =
  let _, bytes = Lazy.force reference in
  with_temp_journal (fun path ->
      write_file path bytes;
      let other = { small_grid with Sweep.deltas = [ 2 ] } in
      match
        Sweep.run ~clock:fixed_clock ~budgets:tight_budgets ~out:path other
      with
      | _ -> Alcotest.fail "accepted a journal for a different grid"
      | exception Failure msg ->
          Alcotest.(check bool)
            "names the refusal" true
            (String.length msg > 0)
          (* the journal must be left untouched by the refusal: *);
          Alcotest.(check string) "journal untouched" bytes (read_file path))

(* ------------------------------------------------------------------ *)
(* Part 3: cross-engine identity                                       *)
(* ------------------------------------------------------------------ *)

let drop_members keys = function
  | J.Obj ms -> J.Obj (List.filter (fun (k, _) -> not (List.mem k keys)) ms)
  | j -> j

let member k = function
  | J.Obj ms -> ( match List.assoc_opt k ms with Some v -> v | None -> J.Null)
  | _ -> J.Null

let map_member key f = function
  | J.Obj ms ->
      J.Obj (List.map (fun (k, v) -> if k = key then (k, f v) else (k, v)) ms)
  | j -> j

let record cell = Sweep.run_cell ~clock:fixed_clock ~budgets:tight_budgets cell

let mk_cell family delta labels engine =
  { Sweep.family; delta; a = 0; x = 0; labels; engine }

(* Cells cheap enough to run 4x each and known to complete with
   status "ok" and zero autopilot budget skips (the contract's
   precondition, asserted below rather than assumed). *)
let identity_cells =
  [
    (Sweep.So, 2, 0);
    (Sweep.So, 3, 0);
    (Sweep.Mm, 3, 0);
    (Sweep.Col, 2, 2);
    (Sweep.Mis, 2, 0);
  ]

let check_identity name expected actual =
  let e = J.to_string expected and a = J.to_string actual in
  Alcotest.(check string) name e a

let test_cross_engine_identity () =
  List.iter
    (fun (family, delta, labels) ->
      let base engine = mk_cell family delta labels engine in
      let explicit1 =
        record (base { Sweep.zdd = false; domains = 1; certify = false })
      in
      let zdd1 =
        record (base { Sweep.zdd = true; domains = 1; certify = false })
      in
      let explicit2 =
        record (base { Sweep.zdd = false; domains = 2; certify = false })
      in
      let certify1 =
        record (base { Sweep.zdd = false; domains = 1; certify = true })
      in
      let tag = J.to_string (member "cell" explicit1) in
      (* Precondition: every configuration completed the whole
         pipeline — the identity contract only covers such cells. *)
      List.iter
        (fun r ->
          Alcotest.(check string)
            (tag ^ ": status ok") "\"ok\""
            (J.to_string (member "status" r));
          Alcotest.(check string)
            (tag ^ ": no autopilot budget skips") "0"
            (J.to_string (member "budget_skips" (member "autopilot" r))))
        [ explicit1; zdd1; explicit2; certify1 ];
      (* Explicit vs ZDD: identical outside the per-engine counters. *)
      let core r =
        drop_members
          [ "cell"; "config"; "wall_s"; "engine_counters"; "certified" ]
          r
      in
      check_identity (tag ^ ": explicit = zdd") (core explicit1) (core zdd1);
      (* 1 vs 2 domains: engine_counters must also agree, except the
         per-worker transport memo hits (null for domains > 1). *)
      let dom r =
        map_member "engine_counters"
          (drop_members [ "transport_cache_hits" ])
          (drop_members [ "cell"; "config"; "wall_s"; "certified" ] r)
      in
      check_identity (tag ^ ": 1 = 2 domains") (dom explicit1) (dom explicit2);
      (* Certifying must not perturb anything it observes — even the
         engine counters agree, because the certifier's checks never
         re-enter the engine during the counted phases. *)
      let cert r = drop_members [ "cell"; "config"; "wall_s"; "certified" ] r in
      check_identity (tag ^ ": plain = certify") (cert explicit1)
        (cert certify1);
      (* And the certifying record actually certified something. *)
      Alcotest.(check bool)
        (tag ^ ": certified counters present") true
        (member "certified" certify1 <> J.Null))
    identity_cells

(* ------------------------------------------------------------------ *)
(* Part 4: CLI end-to-end (relimsweep / analyze_sweep / validate_json) *)
(* ------------------------------------------------------------------ *)

let exe name =
  match Sys.getenv_opt name with
  | Some p -> p
  | None -> Alcotest.fail (name ^ " not set (run via dune runtest)")

(* Runs [bin args], returning (exit code, stdout, stderr). *)
let run_cmd bin args =
  let out = Filename.temp_file "sweep_out" ".txt" in
  let err = Filename.temp_file "sweep_err" ".txt" in
  let cmd =
    Printf.sprintf "%s %s > %s 2> %s" (Filename.quote bin) args
      (Filename.quote out) (Filename.quote err)
  in
  let code = Sys.command cmd in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  (code, stdout, stderr)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let replace ~sub ~by s =
  let n = String.length s and m = String.length sub in
  let buf = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + m <= n && String.sub s !i m = sub then begin
      Buffer.add_string buf by;
      i := !i + m
    end
    else begin
      Buffer.add_char buf s.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let cli_grid_args =
  "--families so,col --deltas 2 --label-counts 2 --ap-steps 1 --ap-beam 2 \
   --fixed-clock -q"

(* One fixed-clock CLI sweep + its merged bench section, shared by the
   CLI tests below: (journal bytes, bench text). *)
let cli_artifacts =
  lazy
    (let journal = Filename.temp_file "cli_sweep" ".jsonl" in
     let bench = Filename.temp_file "cli_bench" ".json" in
     Sys.remove bench;
     let code, _, err =
       run_cmd (exe "RELIMSWEEP")
         (Printf.sprintf "--out %s %s" (Filename.quote journal) cli_grid_args)
     in
     if code <> 0 then
       Alcotest.failf "relimsweep failed (exit %d): %s" code err;
     let first = read_file journal in
     (* Re-running a completed sweep must be a byte-identical no-op. *)
     let code2, _, err2 =
       run_cmd (exe "RELIMSWEEP")
         (Printf.sprintf "--out %s %s" (Filename.quote journal) cli_grid_args)
     in
     if code2 <> 0 then
       Alcotest.failf "relimsweep re-run failed (exit %d): %s" code2 err2;
     let second = read_file journal in
     if not (String.equal first second) then
       Alcotest.fail "relimsweep re-run modified a completed journal";
     let code3, _, err3 =
       run_cmd (exe "ANALYZE_SWEEP")
         (Printf.sprintf "%s --bench %s" (Filename.quote journal)
            (Filename.quote bench))
     in
     if code3 <> 0 then
       Alcotest.failf "analyze_sweep failed (exit %d): %s" code3 err3;
     let bench_text = read_file bench in
     let code4, md, err4 =
       run_cmd (exe "ANALYZE_SWEEP")
         (Printf.sprintf "%s --md" (Filename.quote journal))
     in
     if code4 <> 0 then
       Alcotest.failf "analyze_sweep --md failed (exit %d): %s" code4 err4;
     Sys.remove journal;
     Sys.remove bench;
     (first, bench_text, md))

let with_temp_json text f =
  let path = Filename.temp_file "sweep_bench" ".json" in
  write_file path text;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_cli_pipeline_validates () =
  let _, bench_text, _ = Lazy.force cli_artifacts in
  with_temp_json bench_text (fun path ->
      let code, _, err =
        run_cmd (exe "VALIDATE_JSON") ("--require-sweep " ^ Filename.quote path)
      in
      Alcotest.(check int) ("validator accepts the merged bench: " ^ err) 0 code)

let test_cli_interrupted_exit_code () =
  let journal = Filename.temp_file "cli_partial" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove journal) @@ fun () ->
  let code, _, _ =
    run_cmd (exe "RELIMSWEEP")
      (Printf.sprintf "--out %s --max-cells 1 %s" (Filename.quote journal)
         cli_grid_args)
  in
  Alcotest.(check int) "incomplete sweep exits 3" 3 code

let test_cli_markdown () =
  let _, _, md = Lazy.force cli_artifacts in
  Alcotest.(check bool) "bound-curve table" true (contains ~sub:"Bound curve" md);
  Alcotest.(check bool)
    "engine-comparison table" true
    (contains ~sub:"Engine comparison" md);
  Alcotest.(check bool) "markdown table rows" true (contains ~sub:"|---|" md);
  Alcotest.(check bool)
    "escapes pipes inside cell ids" true
    (contains ~sub:"\\|" md)

let test_validator_rejects_incomplete () =
  let _, bench_text, _ = Lazy.force cli_artifacts in
  let broken =
    replace ~sub:"\"complete\":true" ~by:"\"complete\":false" bench_text
  in
  Alcotest.(check bool)
    "corruption applied" true
    (not (String.equal broken bench_text));
  with_temp_json broken (fun path ->
      let code, _, err =
        run_cmd (exe "VALIDATE_JSON") ("--require-sweep " ^ Filename.quote path)
      in
      Alcotest.(check int) "incomplete sweep rejected" 1 code;
      Alcotest.(check bool)
        "error names completeness" true
        (contains ~sub:"complete" err))

let test_validator_requires_sweep () =
  with_temp_json "{\"bench\":\"relim\"}\n" (fun path ->
      let code, _, err =
        run_cmd (exe "VALIDATE_JSON") ("--require-sweep " ^ Filename.quote path)
      in
      Alcotest.(check int) "missing sweep section rejected" 1 code;
      Alcotest.(check bool) "error names the section" true
        (contains ~sub:"sweep" err);
      (* Without the flag the same file is fine. *)
      let code2, _, _ = run_cmd (exe "VALIDATE_JSON") (Filename.quote path) in
      Alcotest.(check int) "no flag, no requirement" 0 code2)

(* The validator must pass unknown top-level sections through
   untouched: future bench sections must not break old validators. *)
let test_validator_unknown_section_passthrough () =
  let _, bench_text, _ = Lazy.force cli_artifacts in
  let widened =
    replace ~sub:"{\"bench\":\"relim\""
      ~by:
        "{\"bench\":\"relim\",\"mystery\":{\"a\":[1,2,{\"deep\":null}],\"b\":\"x \
         y\"}"
      bench_text
  in
  Alcotest.(check bool)
    "unknown section spliced in" true
    (not (String.equal widened bench_text));
  with_temp_json widened (fun path ->
      let code, _, err = run_cmd (exe "VALIDATE_JSON") (Filename.quote path) in
      Alcotest.(check int) ("unknown section tolerated: " ^ err) 0 code;
      let code2, _, err2 =
        run_cmd (exe "VALIDATE_JSON") ("--require-sweep " ^ Filename.quote path)
      in
      Alcotest.(check int)
        ("unknown section + --require-sweep: " ^ err2)
        0 code2)

(* ------------------------------------------------------------------ *)

let () =
  Certify.Hooks.install_if_env ();
  Trace.setup_from_env ();
  Alcotest.run "sweep"
    [
      ( "mega-suite",
        [
          Alcotest.test_case "table-driven lemma mega-suite" `Quick
            test_megasuite;
        ] );
      ( "resume",
        [
          Alcotest.test_case "uninterrupted reference run" `Quick
            test_reference_run;
          Alcotest.test_case "completed sweep re-run is a no-op" `Quick
            test_noop_rerun;
          Qseed.to_alcotest prop_resume_after_k_cells;
          Qseed.to_alcotest prop_resume_after_torn_tail;
          Alcotest.test_case "scan detects a torn tail" `Quick
            test_scan_detects_torn_tail;
          Alcotest.test_case "refuses a foreign journal" `Quick
            test_refuses_foreign_journal;
        ] );
      ( "cross-engine",
        [
          Alcotest.test_case "explicit/zdd/domains/certify identity" `Quick
            test_cross_engine_identity;
        ] );
      ( "cli",
        [
          Alcotest.test_case "sweep -> analyze -> validate" `Quick
            test_cli_pipeline_validates;
          Alcotest.test_case "interrupted sweep exits 3" `Quick
            test_cli_interrupted_exit_code;
          Alcotest.test_case "markdown tables" `Quick test_cli_markdown;
          Alcotest.test_case "validator rejects complete=false" `Quick
            test_validator_rejects_incomplete;
          Alcotest.test_case "validator --require-sweep" `Quick
            test_validator_requires_sweep;
          Alcotest.test_case "unknown-section passthrough" `Quick
            test_validator_unknown_section_passthrough;
        ] );
    ]
