(* Tests for labelings and the standard encodings. *)

module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Encodings                                                           *)
(* ------------------------------------------------------------------ *)

let test_mis_encoding () =
  let p = Lcl.Encodings.mis ~delta:4 in
  check_int "3 labels" 3 (Relim.Problem.label_count p);
  check_int "arity" 4 (Relim.Problem.delta p);
  check_int "2 node lines" 2 (List.length (Relim.Constr.lines p.node))

let test_degree_one_encodings () =
  (* At delta = 1 the format strings used to emit zero-count groups
     (e.g. "P O^0"), which the parser now rejects; the encodings must
     omit them instead. *)
  let mis1 = Lcl.Encodings.mis ~delta:1 in
  check_int "MIS arity" 1 (Relim.Problem.delta mis1);
  check_int "MIS labels" 3 (Relim.Problem.label_count mis1);
  check_int "SO arity" 1
    (Relim.Problem.delta (Lcl.Encodings.sinkless_orientation ~delta:1));
  check_int "MM arity" 1
    (Relim.Problem.delta (Lcl.Encodings.maximal_matching ~delta:1));
  check_int "weak2col arity" 1
    (Relim.Problem.delta (Lcl.Encodings.weak_2_coloring ~delta:1))

let test_other_encodings () =
  check_int "SO labels" 2
    (Relim.Problem.label_count (Lcl.Encodings.sinkless_orientation ~delta:3));
  check_int "MM labels" 3
    (Relim.Problem.label_count (Lcl.Encodings.maximal_matching ~delta:3));
  check_int "coloring labels" 5
    (Relim.Problem.label_count (Lcl.Encodings.coloring ~delta:3 ~colors:5));
  check_int "weak2col labels" 4
    (Relim.Problem.label_count (Lcl.Encodings.weak_2_coloring ~delta:3))

let test_coloring_encoding_semantics () =
  (* A proper 3-coloring labeling of a path validates; an improper one
     does not. *)
  let g = Tree_gen.path 3 in
  let p = Lcl.Encodings.coloring ~delta:2 ~colors:3 in
  let label v = Relim.Alphabet.find p.alpha (Printf.sprintf "C%d" v) in
  let proper =
    Lcl.Labeling.make g
      [| [| label 0 |]; [| label 1; label 1 |]; [| label 2 |] |]
  in
  check_bool "proper validates" true (Lcl.Labeling.is_valid p proper);
  let improper =
    Lcl.Labeling.make g
      [| [| label 1 |]; [| label 1; label 1 |]; [| label 2 |] |]
  in
  check_bool "improper rejected" false (Lcl.Labeling.is_valid p improper)

(* ------------------------------------------------------------------ *)
(* Labeling checker                                                    *)
(* ------------------------------------------------------------------ *)

let mis_labeling_of g seed =
  let mis, _ = Distalgo.Luby.run ~seed g in
  Lcl.Encodings.mis_labeling g mis

let test_mis_labeling_valid () =
  let g = Tree_gen.random ~n:80 ~max_degree:5 ~seed:3 in
  let labeling = mis_labeling_of g 3 in
  let p = Lcl.Encodings.mis ~delta:(Graph.max_degree g) in
  check_bool "valid (extendable)" true
    (Lcl.Labeling.is_valid ~boundary:`Extendable p labeling);
  check_bool "valid (free)" true
    (Lcl.Labeling.is_valid ~boundary:`Free p labeling)

let test_mis_labeling_violations () =
  let g = Tree_gen.path 4 in
  let p = Lcl.Encodings.mis ~delta:2 in
  let labeling = mis_labeling_of g 5 in
  (* Corrupt: make node 1's first port an M while node 1 is adjacent to
     an M or has a P elsewhere — force a violation. *)
  let m = Relim.Alphabet.find p.alpha "M" in
  let corrupt =
    Lcl.Labeling.make g
      (Array.mapi
         (fun v row -> if v = 1 then Array.make (Array.length row) m else row)
         labeling.Lcl.Labeling.labels)
  in
  let violations = Lcl.Labeling.violations p corrupt in
  check_bool "violations found" true (violations <> [])

let test_boundary_modes () =
  let g = Tree_gen.star 3 in
  (* Star with Delta = 2?? max degree = 2: center degree 2, leaves 1. *)
  let p = Lcl.Encodings.mis ~delta:2 in
  let m = Relim.Alphabet.find p.alpha "M" in
  let p_lab = Relim.Alphabet.find p.alpha "P" in
  (* Center in MIS, leaves point at it. *)
  let labeling =
    Lcl.Labeling.make g [| [| m; m |]; [| p_lab |]; [| p_lab |] |]
  in
  check_bool "extendable ok" true
    (Lcl.Labeling.is_valid ~boundary:`Extendable p labeling);
  check_bool "exact rejects leaves" false
    (Lcl.Labeling.is_valid ~boundary:`Exact p labeling);
  check_bool "free ok" true (Lcl.Labeling.is_valid ~boundary:`Free p labeling)

let test_orientation_labeling_on_tree () =
  (* Trees have no sinkless orientation: some node must violate. *)
  let g = Tree_gen.path 5 in
  let o = Dsgraph.Orientation.towards_root g in
  let labeling = Lcl.Encodings.orientation_labeling g o in
  let p = Lcl.Encodings.sinkless_orientation ~delta:2 in
  let violations = Lcl.Labeling.violations ~boundary:`Exact p labeling in
  check_bool "root is a sink" true
    (List.exists (fun v -> v = Lcl.Labeling.Node_violation 0) violations)

let test_label_at () =
  let g = Tree_gen.path 3 in
  let labeling = Lcl.Labeling.make g [| [| 7 |]; [| 8; 9 |]; [| 6 |] |] in
  let e01 = Graph.edge_id g 0 0 in
  check_int "from 0" 7 (Lcl.Labeling.label_at labeling ~v:0 ~e:e01);
  check_int "from 1" 8 (Lcl.Labeling.label_at labeling ~v:1 ~e:e01)

let test_shape_validation () =
  let g = Tree_gen.path 3 in
  Alcotest.check_raises "wrong ports"
    (Invalid_argument "Labeling.make: wrong number of ports") (fun () ->
      ignore (Lcl.Labeling.make g [| [| 0 |]; [| 0 |]; [| 0 |] |]))

let test_labeling_pp () =
  let g = Tree_gen.path 3 in
  let p = Lcl.Encodings.mis ~delta:2 in
  let m = Relim.Alphabet.find p.alpha "M" in
  let p_lab = Relim.Alphabet.find p.alpha "P" in
  let labeling =
    Lcl.Labeling.make g [| [| p_lab |]; [| m; m |]; [| p_lab |] |]
  in
  let rendered = Format.asprintf "%a" (Lcl.Labeling.pp p) labeling in
  let contains needle =
    let len = String.length needle in
    let rec scan i =
      i + len <= String.length rendered
      && (String.sub rendered i len = needle || scan (i + 1))
    in
    scan 0
  in
  check_bool "node 1 row" true (contains "1: M M");
  check_bool "node 0 row" true (contains "0: P")

let mis_labeling_qcheck =
  [
    QCheck.Test.make ~name:"luby-mis-labeling-always-valid" ~count:20
      QCheck.(pair (int_range 2 120) (int_range 2 7))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 3) in
        let labeling = mis_labeling_of g n in
        let p = Lcl.Encodings.mis ~delta:(Graph.max_degree g) in
        Lcl.Labeling.is_valid ~boundary:`Extendable p labeling);
  ]

let () =
  Alcotest.run "lcl"
    [
      ( "encodings",
        [
          Alcotest.test_case "mis" `Quick test_mis_encoding;
          Alcotest.test_case "others" `Quick test_other_encodings;
          Alcotest.test_case "degree-one" `Quick test_degree_one_encodings;
          Alcotest.test_case "coloring-semantics" `Quick
            test_coloring_encoding_semantics;
        ] );
      ( "labeling",
        [
          Alcotest.test_case "mis-valid" `Quick test_mis_labeling_valid;
          Alcotest.test_case "violations" `Quick test_mis_labeling_violations;
          Alcotest.test_case "boundary-modes" `Quick test_boundary_modes;
          Alcotest.test_case "so-on-trees" `Quick
            test_orientation_labeling_on_tree;
          Alcotest.test_case "label-at" `Quick test_label_at;
          Alcotest.test_case "shape" `Quick test_shape_validation;
          Alcotest.test_case "pretty-printer" `Quick test_labeling_pp;
        ] );
      ( "labeling-props",
        List.map (Qseed.to_alcotest) mis_labeling_qcheck );
    ]
