(* Tests for the distributed algorithms. *)

open Distalgo
module Graph = Dsgraph.Graph
module Tree_gen = Dsgraph.Tree_gen
module Check = Dsgraph.Check

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let count sel = Array.fold_left (fun acc b -> acc + if b then 1 else 0) 0 sel

(* ------------------------------------------------------------------ *)
(* Luby                                                                *)
(* ------------------------------------------------------------------ *)

let test_luby_path () =
  let g = Tree_gen.path 50 in
  let mis, rounds = Luby.run ~seed:1 g in
  check_bool "is MIS" true (Check.is_mis g mis);
  check_bool "nontrivial" true (count mis >= 50 / 3);
  check_bool "terminates briskly" true (rounds <= 60)

let test_luby_star () =
  let g = Tree_gen.star 100 in
  let mis, _ = Luby.run ~seed:7 g in
  check_bool "is MIS" true (Check.is_mis g mis);
  (* Star MIS: either the center alone or all leaves. *)
  check_bool "structure" true (count mis = 1 || count mis = 99)

let test_luby_single_node () =
  let g = Tree_gen.path 1 in
  let mis, rounds = Luby.run g in
  check_bool "selected" true mis.(0);
  check_int "immediate... after one phase" rounds rounds

let luby_qcheck =
  [
    QCheck.Test.make ~name:"luby-always-mis" ~count:25
      QCheck.(triple (int_range 2 150) (int_range 2 8) (int_range 0 1000))
      (fun (n, max_degree, seed) ->
        let g = Tree_gen.random ~n ~max_degree ~seed in
        let mis, _ = Luby.run ~seed g in
        Check.is_mis g mis);
    QCheck.Test.make ~name:"luby-mis-survives-port-shuffle" ~count:15
      QCheck.(triple (int_range 2 120) (int_range 2 7) (int_range 0 1000))
      (fun (n, max_degree, seed) ->
        let g =
          Tree_gen.shuffle_ports
            (Tree_gen.random ~n ~max_degree ~seed)
            ~seed:(seed + 1)
        in
        let mis, _ = Luby.run ~seed g in
        Check.is_independent_set g mis && Check.is_dominating_set g mis
        && Check.is_mis g mis);
  ]

(* ------------------------------------------------------------------ *)
(* Rooting                                                             *)
(* ------------------------------------------------------------------ *)

let test_parent_ports () =
  let g = Tree_gen.balanced ~delta:3 ~depth:2 in
  let pp = Rooted.parent_ports g ~root:0 in
  check_int "root has no parent" (-1) pp.(0);
  for v = 1 to Graph.n g - 1 do
    let parent = Graph.neighbor g v pp.(v) in
    check_bool "parent is closer to the root" true
      ((Graph.bfs g 0).(parent) = (Graph.bfs g 0).(v) - 1)
  done

let test_flooding_matches_centralized () =
  let g = Tree_gen.random ~n:60 ~max_degree:5 ~seed:11 in
  let inputs = Array.init (Graph.n g) (fun v -> v = 0) in
  let result =
    Localsim.Run.run ~ids:Localsim.Run.Anonymous g ~inputs Rooted.flooding
  in
  let expected = Rooted.parent_ports g ~root:0 in
  Alcotest.(check (array int)) "parents" expected result.Localsim.Run.outputs;
  check_bool "rounds ~ eccentricity" true
    (result.Localsim.Run.rounds <= Graph.eccentricity g 0 + 2)

(* ------------------------------------------------------------------ *)
(* Cole–Vishkin                                                        *)
(* ------------------------------------------------------------------ *)

let test_cv_basic () =
  let g = Tree_gen.balanced ~delta:3 ~depth:4 in
  let colors, rounds = Cole_vishkin.run g ~root:0 in
  check_bool "proper 3-coloring" true (Check.is_proper_coloring ~bound:3 g colors);
  check_int "rounds = schedule" (Cole_vishkin.schedule_length (Graph.n g)) rounds

let test_cv_rounds_growth () =
  (* cv_rounds grows extremely slowly (log*-ish). *)
  check_bool "monotone-ish" true (Cole_vishkin.cv_rounds 10 <= Cole_vishkin.cv_rounds 1000000);
  check_bool "tiny for huge n" true (Cole_vishkin.cv_rounds 1000000000 <= 8);
  check_int "trivial for n <= 6" 0 (Cole_vishkin.cv_rounds 6)

let test_cv_single_node () =
  let g = Tree_gen.path 1 in
  let colors, _ = Cole_vishkin.run g ~root:0 in
  check_bool "in palette" true (colors.(0) >= 0 && colors.(0) < 3)

let cv_qcheck =
  [
    QCheck.Test.make ~name:"cv-always-3-colors" ~count:20
      QCheck.(pair (int_range 2 250) (int_range 2 8))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * max_degree) in
        let colors, _ = Cole_vishkin.run g ~root:0 in
        Check.is_proper_coloring ~bound:3 g colors);
    QCheck.Test.make ~name:"cv-valid-after-port-shuffle" ~count:15
      QCheck.(triple (int_range 2 200) (int_range 2 7) (int_range 0 1000))
      (fun (n, max_degree, seed) ->
        let g =
          Tree_gen.shuffle_ports
            (Tree_gen.random ~n ~max_degree ~seed)
            ~seed:(seed + 1)
        in
        let colors, _ = Cole_vishkin.run g ~root:0 in
        Check.is_proper_coloring ~bound:3 g colors);
  ]

(* ------------------------------------------------------------------ *)
(* Color-class selection                                               *)
(* ------------------------------------------------------------------ *)

let test_mis_from_coloring () =
  let g = Tree_gen.path 9 in
  let colors = Array.init 9 (fun v -> v mod 2) in
  let mis, rounds = Color_to_ds.mis_of_proper_coloring g colors in
  check_bool "is MIS" true (Check.is_mis g mis);
  check_int "rounds = palette" 2 rounds;
  (* Color-0 nodes all join (they are an independent set considered
     first). *)
  check_bool "greedy structure" true (mis.(0) && mis.(2) && not mis.(1))

let test_mis_on_tree_pipeline () =
  let g = Tree_gen.random ~n:300 ~max_degree:6 ~seed:5 in
  let mis, rounds = Kods.mis_on_tree g ~root:0 in
  check_bool "is MIS" true (Check.is_mis g mis);
  check_bool "rounds = CV + palette" true
    (rounds <= Cole_vishkin.schedule_length 300 + 3)

(* ------------------------------------------------------------------ *)
(* Defective colorings                                                 *)
(* ------------------------------------------------------------------ *)

let test_palette_size () =
  check_int "k=0 full palette" 9 (Defective.palette_size ~delta:8 ~k:0);
  check_int "k=1" 5 (Defective.palette_size ~delta:8 ~k:1);
  check_int "k=delta" 1 (Defective.palette_size ~delta:8 ~k:8)

let test_defective () =
  let g = Tree_gen.random ~n:200 ~max_degree:7 ~seed:23 in
  List.iter
    (fun k ->
      let colors = Defective.defective g ~k in
      check_bool
        (Printf.sprintf "k=%d defective" k)
        true
        (Check.is_defective_coloring g ~k colors))
    [ 0; 1; 2; 3; 7 ]

let test_arbdefective () =
  let g = Tree_gen.random ~n:200 ~max_degree:7 ~seed:29 in
  List.iter
    (fun k ->
      let colors, o = Defective.arbdefective g ~k in
      check_bool
        (Printf.sprintf "k=%d arbdefective" k)
        true
        (Check.is_arbdefective_coloring g ~k colors o))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* k-outdegree dominating sets                                         *)
(* ------------------------------------------------------------------ *)

let test_kods_pipelines () =
  let g = Tree_gen.random ~n:150 ~max_degree:8 ~seed:31 in
  List.iter
    (fun k ->
      let r = Kods.via_arbdefective g ~k in
      check_bool
        (Printf.sprintf "k=%d verified" k)
        true
        (Check.is_k_outdegree_dominating_set g ~k r.Kods.selected
           r.Kods.orientation);
      check_int "rounds = palette" r.Kods.palette r.Kods.rounds)
    [ 0; 1; 2; 4 ]

let test_kods_k0_is_mis () =
  let g = Tree_gen.random ~n:100 ~max_degree:5 ~seed:37 in
  let r = Kods.via_arbdefective g ~k:0 in
  check_bool "k=0 gives an MIS" true (Check.is_mis g r.Kods.selected)

let test_via_defective () =
  let g = Tree_gen.random ~n:150 ~max_degree:8 ~seed:41 in
  List.iter
    (fun k ->
      let r = Kods.via_defective g ~k in
      check_bool
        (Printf.sprintf "k=%d degree-DS" k)
        true
        (Check.is_k_degree_dominating_set g ~k r.Kods.selected))
    [ 0; 1; 3 ]

let test_round_robin () =
  let g = Tree_gen.balanced ~delta:12 ~depth:2 in
  List.iter
    (fun k ->
      let r = Kods.via_round_robin g ~k ~root:0 in
      check_bool
        (Printf.sprintf "k=%d valid" k)
        true
        (Check.is_k_outdegree_dominating_set g ~k r.Kods.selected
           r.Kods.orientation);
      check_int
        (Printf.sprintf "k=%d worst-case palette" k)
        (Defective.palette_size ~delta:12 ~k)
        r.Kods.palette)
    [ 1; 2; 3; 6 ];
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Kods.via_round_robin: needs k >= 1") (fun () ->
      ignore (Kods.via_round_robin g ~k:0 ~root:0))

let test_trivial_rooted () =
  let g = Tree_gen.random ~n:80 ~max_degree:6 ~seed:43 in
  let r = Kods.trivial_on_rooted_tree g ~k:1 ~root:0 in
  check_int "0 rounds" 0 r.Kods.rounds;
  check_bool "everything selected" true (Array.for_all Fun.id r.Kods.selected);
  Alcotest.check_raises "k=0 rejected"
    (Invalid_argument "Kods.trivial_on_rooted_tree: needs k >= 1") (fun () ->
      ignore (Kods.trivial_on_rooted_tree g ~k:0 ~root:0))

let kods_qcheck =
  [
    QCheck.Test.make ~name:"kods-always-valid" ~count:20
      QCheck.(
        triple (int_range 2 120) (int_range 2 9) (int_range 0 4))
      (fun (n, max_degree, k) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n + k) in
        let r = Kods.via_arbdefective g ~k in
        Check.is_k_outdegree_dominating_set g ~k r.Kods.selected
          r.Kods.orientation);
  ]

(* ------------------------------------------------------------------ *)
(* Matchings                                                           *)
(* ------------------------------------------------------------------ *)

let test_maximal_matching () =
  let g = Tree_gen.random ~n:200 ~max_degree:6 ~seed:51 in
  let colors = Dsgraph.Edge_coloring.color_tree g in
  let sel, rounds = Matching.maximal g colors in
  check_bool "maximal matching" true (Check.is_maximal_matching g sel);
  check_int "rounds = palette" (1 + Array.fold_left max 0 colors) rounds

let test_b_matching () =
  let g = Tree_gen.random ~n:200 ~max_degree:8 ~seed:53 in
  let colors = Dsgraph.Edge_coloring.color_tree g in
  List.iter
    (fun b ->
      let sel, _ = Matching.b_matching g ~b colors in
      check_bool (Printf.sprintf "b=%d" b) true (Check.is_b_matching g ~b sel);
      (* Larger b never selects fewer edges with this greedy order. *)
      ignore sel)
    [ 1; 2; 3 ]

let test_matching_rejects_improper () =
  let g = Tree_gen.path 3 in
  Alcotest.check_raises "improper coloring"
    (Invalid_argument "Matching: edge coloring is not proper") (fun () ->
      ignore (Matching.maximal g [| 0; 0 |]))

let test_line_graph_correspondence () =
  (* An MIS of the line graph, computed by Luby, is a maximal matching
     of the base graph — the correspondence the paper uses (Section 1). *)
  let g = Tree_gen.random ~n:120 ~max_degree:6 ~seed:57 in
  let lg = Dsgraph.Line_graph.of_graph g in
  let mis, _ = Luby.run ~seed:5 lg in
  let matching = Dsgraph.Line_graph.matching_of_mis g mis in
  check_bool "maximal matching" true (Check.is_maximal_matching g matching)

let matching_qcheck =
  [
    QCheck.Test.make ~name:"matching-always-maximal" ~count:20
      QCheck.(pair (int_range 2 150) (int_range 2 8))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 17) in
        let colors = Dsgraph.Edge_coloring.color_tree g in
        let sel, _ = Matching.maximal g colors in
        Check.is_maximal_matching g sel);
    QCheck.Test.make ~name:"line-graph-mis-is-matching" ~count:15
      QCheck.(pair (int_range 3 80) (int_range 2 6))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 19) in
        let lg = Dsgraph.Line_graph.of_graph g in
        if Graph.m g = 0 then true
        else begin
          let mis, _ = Luby.run ~seed:n lg in
          Check.is_maximal_matching g (Dsgraph.Line_graph.matching_of_mis g mis)
        end);
  ]

(* ------------------------------------------------------------------ *)
(* Linial color reduction                                              *)
(* ------------------------------------------------------------------ *)

let test_linial_trees () =
  let g = Tree_gen.random ~n:400 ~max_degree:6 ~seed:101 in
  let colors, _ = Linial.run g in
  check_bool "proper <= Delta+1" true
    (Check.is_proper_coloring ~bound:(Graph.max_degree g + 1) g colors)

let test_linial_general_graphs () =
  (* Cycles and regular bipartite graphs: no rooting available. *)
  let cycle =
    Graph.of_edges ~n:60 (List.init 60 (fun i -> (i, (i + 1) mod 60)))
  in
  let colors, _ = Linial.run cycle in
  check_bool "cycle 3-colored" true (Check.is_proper_coloring ~bound:3 cycle colors);
  let g, _ = Tree_gen.regular_bipartite ~delta:4 ~half:20 ~seed:103 in
  let colors, _ = Linial.run g in
  check_bool "regular graph" true
    (Check.is_proper_coloring ~bound:5 g colors)

let test_linial_schedule () =
  let fixpoint, linial_rounds, reduce_rounds = Linial.schedule ~n:1000 ~delta:8 in
  check_bool "fixpoint is O((2 Delta)^2)" true (fixpoint <= 17 * 17);
  check_bool "few linial rounds" true (linial_rounds <= 4);
  check_int "reduce accounts for the rest" (fixpoint - 9) reduce_rounds

let test_mis_via_linial () =
  let g = Tree_gen.random ~n:300 ~max_degree:7 ~seed:107 in
  let mis, rounds = Kods.mis_via_linial g in
  check_bool "is MIS" true (Check.is_mis g mis);
  check_bool "rounds within schedule" true (rounds <= 600);
  (* And on a cycle, where the tree pipeline cannot run at all. *)
  let cycle =
    Graph.of_edges ~n:40 (List.init 40 (fun i -> (i, (i + 1) mod 40)))
  in
  let mis, _ = Kods.mis_via_linial cycle in
  check_bool "cycle MIS" true (Check.is_mis cycle mis)

let linial_qcheck =
  [
    QCheck.Test.make ~name:"linial-always-proper" ~count:15
      QCheck.(pair (int_range 2 250) (int_range 2 8))
      (fun (n, max_degree) ->
        let g = Tree_gen.random ~n ~max_degree ~seed:(n * 29) in
        let colors, _ = Linial.run g in
        Check.is_proper_coloring ~bound:(Graph.max_degree g + 1) g colors);
  ]

(* ------------------------------------------------------------------ *)
(* Ruling sets                                                         *)
(* ------------------------------------------------------------------ *)

let test_ruling_set_verifier () =
  let g = Tree_gen.path 7 in
  (* {0, 3, 6}: pairwise distance 3, domination radius 2... every node
     within 1 actually: 1->0, 2->3, 4->3, 5->6. *)
  let sel = Array.init 7 (fun v -> v mod 3 = 0) in
  check_bool "(3,1)-ruling set" true
    (Ruling_set.is_ruling_set g ~alpha:3 ~beta:1 sel);
  check_bool "not alpha=4" false
    (Ruling_set.is_ruling_set g ~alpha:4 ~beta:1 sel);
  (* {0}: independent but not dominating within 2. *)
  let lone = Array.init 7 (fun v -> v = 0) in
  check_bool "not dominating" false
    (Ruling_set.is_ruling_set g ~alpha:2 ~beta:2 lone);
  check_bool "dominating within 6" true
    (Ruling_set.is_ruling_set g ~alpha:2 ~beta:6 lone)

let test_ruling_set_construction () =
  let g = Tree_gen.random ~n:150 ~max_degree:6 ~seed:71 in
  List.iter
    (fun beta ->
      let sel, rounds = Ruling_set.via_power_mis g ~beta ~seed:beta in
      check_bool
        (Printf.sprintf "beta=%d valid" beta)
        true
        (Ruling_set.is_ruling_set g ~alpha:(beta + 1) ~beta sel);
      check_bool "rounds scaled" true (rounds mod beta = 0))
    [ 1; 2; 3 ]

let test_matching_adversarial_ports () =
  (* The matching algorithm keys on edge colors, not ports, so an
     adversarial port renumbering must not affect correctness. *)
  let g0 = Tree_gen.random ~n:120 ~max_degree:7 ~seed:91 in
  let colors = Dsgraph.Edge_coloring.color_tree g0 in
  let g = Tree_gen.shuffle_ports g0 ~seed:93 in
  let sel, _ = Matching.maximal g colors in
  check_bool "still maximal" true (Check.is_maximal_matching g sel)

let test_ruling_set_beta1_is_mis () =
  let g = Tree_gen.random ~n:90 ~max_degree:5 ~seed:73 in
  let sel, _ = Ruling_set.via_power_mis g ~beta:1 ~seed:5 in
  check_bool "beta=1 gives an MIS" true (Check.is_mis g sel)

(* Differential properties: the distributed constructions are checked
   by the independent centralized verifiers in Dsgraph.Check /
   Ruling_set.is_ruling_set on random trees, including under
   adversarial port renumberings. *)
let ruling_qcheck =
  [
    QCheck.Test.make ~name:"power-mis-is-ruling-set" ~count:20
      QCheck.(
        quad (int_range 2 120) (int_range 2 6) (int_range 1 3)
          (int_range 0 1000))
      (fun (n, max_degree, beta, seed) ->
        let g = Tree_gen.random ~n ~max_degree ~seed in
        let sel, rounds = Ruling_set.via_power_mis g ~beta ~seed in
        Ruling_set.is_ruling_set g ~alpha:(beta + 1) ~beta sel
        && Ruling_set.is_ruling_set g ~alpha:2 ~beta sel
        && rounds mod beta = 0);
    QCheck.Test.make ~name:"beta1-agrees-with-mis-checker" ~count:20
      QCheck.(triple (int_range 2 120) (int_range 2 6) (int_range 0 1000))
      (fun (n, max_degree, seed) ->
        let g = Tree_gen.random ~n ~max_degree ~seed in
        let sel, _ = Ruling_set.via_power_mis g ~beta:1 ~seed in
        (* Two independent verdicts must agree: the ruling-set checker
           at (2, 1) and the MIS checker. *)
        Check.is_mis g sel
        && Check.is_independent_set g sel
        && Check.is_dominating_set g sel
        && Ruling_set.is_ruling_set g ~alpha:2 ~beta:1 sel);
    QCheck.Test.make ~name:"ruling-set-survives-port-shuffle" ~count:15
      QCheck.(triple (int_range 2 100) (int_range 2 6) (int_range 0 1000))
      (fun (n, max_degree, seed) ->
        let g =
          Tree_gen.shuffle_ports
            (Tree_gen.random ~n ~max_degree ~seed)
            ~seed:(seed + 1)
        in
        let sel, _ = Ruling_set.via_power_mis g ~beta:2 ~seed in
        Ruling_set.is_ruling_set g ~alpha:3 ~beta:2 sel);
  ]

let () =
  let qsuite name tests =
    (name, List.map (Qseed.to_alcotest) tests)
  in
  Alcotest.run "distalgo"
    [
      ( "luby",
        [
          Alcotest.test_case "path" `Quick test_luby_path;
          Alcotest.test_case "star" `Quick test_luby_star;
          Alcotest.test_case "single-node" `Quick test_luby_single_node;
        ] );
      qsuite "luby-props" luby_qcheck;
      ( "rooting",
        [
          Alcotest.test_case "centralized" `Quick test_parent_ports;
          Alcotest.test_case "flooding" `Quick test_flooding_matches_centralized;
        ] );
      ( "cole-vishkin",
        [
          Alcotest.test_case "balanced tree" `Quick test_cv_basic;
          Alcotest.test_case "round schedule" `Quick test_cv_rounds_growth;
          Alcotest.test_case "single node" `Quick test_cv_single_node;
        ] );
      qsuite "cv-props" cv_qcheck;
      ( "color-to-ds",
        [
          Alcotest.test_case "mis-from-coloring" `Quick test_mis_from_coloring;
          Alcotest.test_case "mis-on-tree" `Quick test_mis_on_tree_pipeline;
        ] );
      ( "defective",
        [
          Alcotest.test_case "palette" `Quick test_palette_size;
          Alcotest.test_case "defective" `Quick test_defective;
          Alcotest.test_case "arbdefective" `Quick test_arbdefective;
        ] );
      ( "kods",
        [
          Alcotest.test_case "pipelines" `Quick test_kods_pipelines;
          Alcotest.test_case "k0-is-mis" `Quick test_kods_k0_is_mis;
          Alcotest.test_case "via-defective" `Quick test_via_defective;
          Alcotest.test_case "round-robin" `Quick test_round_robin;
          Alcotest.test_case "trivial-rooted" `Quick test_trivial_rooted;
        ] );
      qsuite "kods-props" kods_qcheck;
      ( "matching",
        [
          Alcotest.test_case "maximal" `Quick test_maximal_matching;
          Alcotest.test_case "b-matching" `Quick test_b_matching;
          Alcotest.test_case "improper rejected" `Quick
            test_matching_rejects_improper;
          Alcotest.test_case "line-graph correspondence" `Quick
            test_line_graph_correspondence;
          Alcotest.test_case "adversarial ports" `Quick
            test_matching_adversarial_ports;
        ] );
      qsuite "matching-props" matching_qcheck;
      ( "linial",
        [
          Alcotest.test_case "trees" `Quick test_linial_trees;
          Alcotest.test_case "general graphs" `Quick test_linial_general_graphs;
          Alcotest.test_case "schedule" `Quick test_linial_schedule;
          Alcotest.test_case "MIS pipeline" `Quick test_mis_via_linial;
        ] );
      qsuite "linial-props" linial_qcheck;
      ( "ruling-sets",
        [
          Alcotest.test_case "verifier" `Quick test_ruling_set_verifier;
          Alcotest.test_case "construction" `Quick test_ruling_set_construction;
          Alcotest.test_case "beta=1 is MIS" `Quick test_ruling_set_beta1_is_mis;
        ] );
      qsuite "ruling-props" ruling_qcheck;
    ]
