(* Equivalence suite for the hash-consed ZDD engine (lib/zdd) and its
   wiring into the round-elimination hot paths.

   The contract under test is byte-identity: on every instance both
   paths can handle, the ZDD-backed variants must reproduce the
   explicit-list results exactly — same sets, same order, same
   serialized problems, same counters — while extending the capacity
   envelope past the explicit path's budgets (the "Δ wall"). *)

open Relim

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Reference model: a family as a sorted list of masks                 *)
(* ------------------------------------------------------------------ *)

module IntSet = Set.Make (Int)

let family_of_zdd mgr z = IntSet.of_list (Zdd.elements mgr z)

let zdd_of_family mgr fam =
  IntSet.fold (fun m acc -> Zdd.union mgr acc (Zdd.of_mask mgr m)) fam Zdd.bot

let ref_join a b =
  IntSet.fold
    (fun x acc -> IntSet.fold (fun y acc -> IntSet.add (x lor y) acc) b acc)
    a IntSet.empty

let ref_meet a b =
  IntSet.fold
    (fun x acc -> IntSet.fold (fun y acc -> IntSet.add (x land y) acc) b acc)
    a IntSet.empty

let ref_maximal fam =
  IntSet.filter
    (fun x ->
      not
        (IntSet.exists (fun y -> x <> y && x land y = x && x lor y = y) fam))
    fam

(* ------------------------------------------------------------------ *)
(* Core engine: unit cases                                             *)
(* ------------------------------------------------------------------ *)

let test_zdd_basics () =
  let mgr = Zdd.create ~nbits:6 () in
  check_int "bot count" 0 (Zdd.count mgr Zdd.bot);
  check_int "top count" 1 (Zdd.count mgr Zdd.top);
  check Alcotest.(list int) "top elements" [ 0 ] (Zdd.elements mgr Zdd.top);
  let ps = Zdd.powerset mgr 0b101011 in
  check_int "powerset count" 16 (Zdd.count mgr ps);
  check_int "powerset nodes" 4 (Zdd.node_count mgr ps);
  check_bool "powerset mem" true (Zdd.mem mgr ps 0b100010);
  check_bool "powerset not mem" false (Zdd.mem mgr ps 0b000100);
  (* canonical: same family built two ways is physically equal *)
  let a = Zdd.union mgr (Zdd.of_mask mgr 5) (Zdd.of_mask mgr 3) in
  let b = Zdd.union mgr (Zdd.of_mask mgr 3) (Zdd.of_mask mgr 5) in
  check_bool "canonical" true (Zdd.equal a b);
  check Alcotest.(list int) "sorted enumeration" [ 3; 5 ]
    (Zdd.elements mgr a)

let test_zdd_node_limit () =
  let mgr = Zdd.create ~node_limit:8 ~nbits:20 () in
  match Zdd.powerset mgr ((1 lsl 20) - 1) with
  | _ -> Alcotest.fail "expected Limit"
  | exception Zdd.Limit { what; limit; realized } ->
      check_bool "names the table" true (contains ~sub:"unique-table" what);
      check_bool "echoes the limit" true (limit = 8.);
      check_bool "realized at the cap" true (realized >= 8)

let test_zdd_iter_limit () =
  let mgr = Zdd.create ~nbits:5 () in
  let ps = Zdd.powerset mgr 0b11111 in
  (* exactly at the cardinality: no trip *)
  let n = ref 0 in
  Zdd.iter ~limit:32 mgr ps (fun _ -> incr n);
  check_int "limit = count passes" 32 !n;
  (* one below: trips with the realized count in the payload *)
  match Zdd.iter ~limit:7 mgr ps (fun _ -> ()) with
  | () -> Alcotest.fail "expected Limit"
  | exception Zdd.Limit { realized; limit; _ } ->
      check_int "realized = limit" 7 realized;
      check_bool "limit echoed" true (limit = 7.)

(* ------------------------------------------------------------------ *)
(* Core engine: every operation vs the reference model                 *)
(* ------------------------------------------------------------------ *)

let zdd_qcheck =
  let nbits = 8 in
  let gen_family =
    QCheck.(
      map IntSet.of_list (list_of_size Gen.(0 -- 12) (int_bound 255)))
  in
  let mk () = Zdd.create ~nbits () in
  let eq mgr z fam = IntSet.equal (family_of_zdd mgr z) fam in
  [
    QCheck.Test.make ~name:"roundtrip" ~count:300 gen_family (fun fam ->
        let mgr = mk () in
        eq mgr (zdd_of_family mgr fam) fam);
    QCheck.Test.make ~name:"union/inter/diff = set ops" ~count:300
      (QCheck.pair gen_family gen_family) (fun (a, b) ->
        let mgr = mk () in
        let za = zdd_of_family mgr a and zb = zdd_of_family mgr b in
        eq mgr (Zdd.union mgr za zb) (IntSet.union a b)
        && eq mgr (Zdd.inter mgr za zb) (IntSet.inter a b)
        && eq mgr (Zdd.diff mgr za zb) (IntSet.diff a b));
    QCheck.Test.make ~name:"join/meet = pointwise or/and" ~count:300
      (QCheck.pair gen_family gen_family) (fun (a, b) ->
        let mgr = mk () in
        let za = zdd_of_family mgr a and zb = zdd_of_family mgr b in
        eq mgr (Zdd.join mgr za zb) (ref_join a b)
        && eq mgr (Zdd.meet mgr za zb) (ref_meet a b));
    QCheck.Test.make ~name:"onset/offset = bit filters" ~count:300
      (QCheck.pair gen_family (QCheck.int_bound (nbits - 1)))
      (fun (a, l) ->
        let mgr = mk () in
        let za = zdd_of_family mgr a in
        eq mgr (Zdd.onset mgr l za)
          (IntSet.filter (fun x -> x land (1 lsl l) <> 0) a)
        && eq mgr (Zdd.offset mgr l za)
             (IntSet.filter (fun x -> x land (1 lsl l) = 0) a));
    QCheck.Test.make ~name:"subsets_within = subset filter" ~count:300
      (QCheck.pair gen_family (QCheck.int_bound 255))
      (fun (a, s) ->
        let mgr = mk () in
        eq mgr
          (Zdd.subsets_within mgr (zdd_of_family mgr a) s)
          (IntSet.filter (fun x -> x land s = x) a));
    QCheck.Test.make ~name:"maximal = antichain of maximal members"
      ~count:300 gen_family (fun a ->
        let mgr = mk () in
        eq mgr (Zdd.maximal mgr (zdd_of_family mgr a)) (ref_maximal a));
    QCheck.Test.make ~name:"count/mem/sorted-iter" ~count:300
      (QCheck.pair gen_family (QCheck.int_bound 255))
      (fun (a, probe) ->
        let mgr = mk () in
        let za = zdd_of_family mgr a in
        Zdd.count mgr za = IntSet.cardinal a
        && Zdd.mem mgr za probe = IntSet.mem probe a
        && Zdd.elements mgr za = IntSet.elements a);
    QCheck.Test.make ~name:"iter_ge = sorted suffix" ~count:300
      (QCheck.pair gen_family (QCheck.int_bound 255))
      (fun (a, from) ->
        let mgr = mk () in
        let za = zdd_of_family mgr a in
        let got = ref [] in
        Zdd.iter_ge mgr za ~from (fun x -> got := x :: !got);
        List.rev !got = List.filter (fun x -> x >= from) (IntSet.elements a));
  ]

(* ------------------------------------------------------------------ *)
(* Right-closed families: ZDD vs order-ideal enumeration               *)
(* ------------------------------------------------------------------ *)

(* Random Δ = 2 problems over 4 labels: the edge constraint is a random
   non-empty set of unordered label pairs (every label used at least
   once so the alphabet survives parsing), giving edge diagrams that
   range over chains, antichains and everything between. *)
let gen_edge_problem =
  let names = [| "a"; "b"; "c"; "d" |] in
  let all_pairs =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun j -> if j >= i then Some (i, j) else None)
          [ 0; 1; 2; 3 ])
      [ 0; 1; 2; 3 ]
  in
  QCheck.map
    (fun bits ->
      let chosen =
        List.filteri (fun idx _ -> bits land (1 lsl idx) <> 0) all_pairs
      in
      (* guarantee every label appears: always include (0,1) and (2,3) *)
      let chosen =
        List.sort_uniq compare ((0, 1) :: (2, 3) :: chosen)
      in
      let edge =
        String.concat "\n"
          (List.map
             (fun (i, j) -> Printf.sprintf "%s %s" names.(i) names.(j))
             chosen)
      in
      Parse.problem ~name:"rand" ~node:"[a b c d] [a b c d]" ~edge)
    QCheck.(int_bound 1023)

let rc_sets_equal d =
  let explicit = Diagram.right_closed_sets d in
  let zdd = Diagram.right_closed_sets_zdd d in
  List.equal Labelset.equal explicit zdd

let rc_qcheck =
  [
    QCheck.Test.make ~name:"right_closed_sets_zdd = explicit (random edge \
                            diagrams)" ~count:300 gen_edge_problem (fun p ->
        rc_sets_equal (Diagram.edge_diagram p));
  ]

(* Δ = 2 problem whose node diagram is the chain l0 < … < l(n-1); same
   construction as the relim suite.  24 labels — past the seed's old
   hard caps — has exactly 24 right-closed sets (the suffixes). *)
let chain_problem n =
  let name i = Printf.sprintf "l%d" i in
  let names = List.init n name in
  let all = String.concat " " names in
  let node =
    String.concat "\n"
      (List.init n (fun i ->
           match List.filteri (fun j _ -> i + j >= n - 1) names with
           | [ only ] -> Printf.sprintf "%s %s" (name i) only
           | partners ->
               Printf.sprintf "%s [%s]" (name i) (String.concat " " partners)))
  in
  Parse.problem
    ~name:(Printf.sprintf "chain%d" n)
    ~node
    ~edge:(Printf.sprintf "[%s] [%s]" all all)

(* Complete graph k-coloring: the node constraint is monochromatic, the
   edge constraint all distinct pairs, so the node diagram is a
   k-antichain and the right-closed family has 2^k - 1 members — an
   exponentially large family with a k-node ZDD.  R̄(col_k) = col_k. *)
let col_problem k =
  let name i = Printf.sprintf "c%d" i in
  let node =
    String.concat "\n"
      (List.init k (fun i ->
           Printf.sprintf "%s %s %s" (name i) (name i) (name i)))
  in
  let edge =
    String.concat "\n"
      (List.concat_map
         (fun i ->
           List.filter_map
             (fun j ->
               if i < j then Some (Printf.sprintf "%s %s" (name i) (name j))
               else None)
             (List.init k Fun.id))
         (List.init k Fun.id))
  in
  Parse.problem ~name:(Printf.sprintf "col%d" k) ~node ~edge

let test_rc_chain24 () =
  let n = 24 in
  let d = Diagram.node_diagram (chain_problem n) in
  check_bool "chain24 families agree" true (rc_sets_equal d);
  check_int "chain24 has n suffixes" n
    (List.length (Diagram.right_closed_sets_zdd d));
  (* compressed size: the n suffix sets share their tails, so the
     diagram stays linear (measured: 2n - 3 nodes) *)
  let mgr, fam = Diagram.right_closed_family d in
  check_int "chain24 counts without enumeration" n (Zdd.count mgr fam);
  check_bool "linear node count" true (Zdd.node_count mgr fam <= 2 * n)

let test_rc_antichain_compression () =
  let k = 16 in
  let d = Diagram.node_diagram (col_problem k) in
  let mgr, fam = Diagram.right_closed_family d in
  check_int "2^k - 1 members" ((1 lsl k) - 1) (Zdd.count mgr fam);
  (* "all non-empty subsets" needs one chain per bit plus a spine
     tracking "some bit already set": ≤ 2k nodes for 2^k - 1 members *)
  check_bool "O(k)-node representation" true (Zdd.node_count mgr fam <= 2 * k)

let test_rc_zdd_budgets () =
  let d = Diagram.node_diagram (col_problem 12) in
  (* set-count budget carries the realized count, like the explicit
     path's message (both feed the same bench/validate checks) *)
  (match Diagram.right_closed_sets_zdd ~limit:100 d with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Budget.Budget_exceeded { budget; limit } ->
      check_bool "realized in payload" true
        (contains ~sub:"(realized 100)" budget);
      check_bool "limit echoed" true (limit = 100.));
  (* node budget trips as a Budget_exceeded, not a raw Zdd.Limit *)
  match Diagram.right_closed_family ~node_limit:4 d with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Budget.Budget_exceeded { budget; _ } ->
      check_bool "names the table" true (contains ~sub:"unique-table" budget)

let test_rc_explicit_realized_payload () =
  let d = Diagram.node_diagram (col_problem 8) in
  match Diagram.right_closed_sets ~limit:9 d with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Budget.Budget_exceeded { budget; _ } ->
      check_bool "realized in payload" true
        (contains ~sub:"(realized 9)" budget)

(* ------------------------------------------------------------------ *)
(* Engine parity: rbar / step with and without the ZDD path            *)
(* ------------------------------------------------------------------ *)

let mis3 =
  Parse.problem ~name:"mis" ~node:"M M M\nP O O\nP P O\nP P P"
    ~edge:"M [PO]\nO O"

let so3 = Parse.problem ~name:"so" ~node:"H T T\nH H T\nH H H" ~edge:"H T"

(* [boxes_emitted] is deliberately absent: since PR 10 the fully
   symbolic path emits only the surviving boxes, so the counter is
   engine-dependent (see Rounde.rbar).  [rc_sets] stays in the
   contract — the symbolic path counts the same right-closed family
   via [Diagram.right_closed_count] without materializing it. *)
type outcome =
  | Done of string * Labelset.t list * int
      (** serialized problem, denotations, rc_sets *)
  | Tripped of string

let run_step ?rc_limit ~zdd p =
  Rounde.reset_stats ();
  match Rounde.step ?rc_limit ~zdd p with
  | { Rounde.problem; denotations } ->
      Done
        ( Serialize.to_string problem,
          Array.to_list denotations,
          Rounde.stats.Rounde.rc_sets )
  | exception Budget.Budget_exceeded { budget; _ } -> Tripped budget

let run_rbar ?rc_limit ~zdd p =
  Rounde.reset_stats ();
  match Rounde.rbar ?rc_limit ~zdd p with
  | { Rounde.problem; denotations } ->
      Done
        ( Serialize.to_string problem,
          Array.to_list denotations,
          Rounde.stats.Rounde.rc_sets )
  | exception Budget.Budget_exceeded { budget; _ } -> Tripped budget

let check_parity ~what run p =
  let explicit = run ~zdd:false p and zdd = run ~zdd:true p in
  (match explicit with
  | Done _ -> ()
  | Tripped b -> Alcotest.failf "%s: explicit path tripped %s" what b);
  check_bool (what ^ ": byte-identical") true (explicit = zdd)

let test_step_parity_presets () =
  check_parity ~what:"mis3 step" (fun ~zdd p -> run_step ~zdd p) mis3;
  (* the MIS step runs fully symbolically: pin its engine-dependent
     counters.  27 allowed tuples, 167 valid boxes (arrangements
     counted), 8 maximal arrangements, 4 canonical maximal boxes —
     and only those 4 survivors were ever materialized *)
  ignore (run_step ~zdd:true mis3);
  let s = Rounde.stats in
  check_int "mis3 maxbox tuples" 27 s.Rounde.maxbox_tuples;
  check_int "mis3 maxbox cubes" 167 s.Rounde.maxbox_cubes;
  check_int "mis3 maxbox maximal" 8 s.Rounde.maxbox_maximal;
  check_int "mis3 maxbox enumerated" 4 s.Rounde.maxbox_enumerated;
  check_int "mis3 emits only survivors" 4 s.Rounde.boxes_emitted;
  check_parity ~what:"so3 step" (fun ~zdd p -> run_step ~zdd p) so3;
  (* two iterated speedup steps of MIS: the diagrams get irregular *)
  let p1 = (Rounde.step mis3).Rounde.problem in
  check_parity ~what:"mis3 step^2" (fun ~zdd p -> run_step ~zdd p) p1;
  (* the third speedup step is past the explicit wall — pin how each
     engine reports.  The DFS drowns in box enumeration work; the
     compressed path enumerates the boxes cheaply (the R̄ alphabet here
     is 46 labels wide, past the Δ·n ≤ 62 slotted-filter envelope) and
     trips on the quadratic dominance scan instead — the scan-work
     budget that turned a minutes-long discarded scan into an instant
     verdict in PR 10. *)
  let p2 = (Rounde.step p1).Rounde.problem in
  (match run_step ~zdd:false p2 with
  | Done _ -> Alcotest.fail "mis3 step^3 should exceed the explicit budget"
  | Tripped budget ->
      check_bool "explicit: box work" true
        (contains ~sub:"box enumeration work" budget));
  match run_step ~zdd:true p2 with
  | Done _ -> Alcotest.fail "mis3 step^3 should exceed the scan budget"
  | Tripped budget ->
      check_bool "zdd: maximal box scan work" true
        (contains ~sub:"maximal box scan work (zdd)" budget)

let test_rbar_parity_families () =
  List.iter
    (fun k ->
      check_parity
        ~what:(Printf.sprintf "col%d rbar" k)
        (fun ~zdd p -> run_rbar ~zdd p)
        (col_problem k))
    [ 2; 4; 6; 8 ];
  List.iter
    (fun n ->
      check_parity
        ~what:(Printf.sprintf "chain%d rbar" n)
        (fun ~zdd p -> run_rbar ~zdd p)
        (chain_problem n))
    [ 4; 10; 24 ]

(* every library preset the pipeline ships, at the Δs the sweep grids
   use: the full step must be byte-identical across engines on all of
   them (the symbolic rung handles the exact-diagram ones, the
   streaming rung the rest — which rung ran is invisible here, as it
   must be) *)
let test_step_parity_all_presets () =
  let presets =
    [
      Lcl.Encodings.mis ~delta:2;
      Lcl.Encodings.mis ~delta:3;
      Lcl.Encodings.sinkless_orientation ~delta:3;
      Lcl.Encodings.sinkless_orientation ~delta:4;
      Lcl.Encodings.maximal_matching ~delta:2;
      Lcl.Encodings.maximal_matching ~delta:3;
      Lcl.Encodings.coloring ~delta:3 ~colors:3;
      Lcl.Encodings.coloring ~delta:3 ~colors:4;
      Lcl.Encodings.weak_2_coloring ~delta:3;
      Core.Family.pi { Core.Family.delta = 3; a = 2; x = 1 };
      Core.Family.pi { Core.Family.delta = 4; a = 3; x = 2 };
      Core.Family.pi_plus { Core.Family.delta = 4; a = 3; x = 1 };
      Core.Family.pi_plus { Core.Family.delta = 5; a = 4; x = 2 };
    ]
  in
  List.iter
    (fun p ->
      let what = Printf.sprintf "%s step" p.Problem.name in
      let explicit = run_step ~zdd:false p in
      let zdd = run_step ~zdd:true p in
      (match explicit with
      | Done _ -> ()
      | Tripped b ->
          (* the output-alphabet-width budget is engine-independent
             (both paths produce the same boxes), so a preset past it —
             4-coloring at Δ=3 — must trip identically on both *)
          check_bool
            (what ^ ": only the width budget may trip")
            true
            (contains ~sub:"output alphabet width" b));
      check_bool (what ^ ": byte-identical") true (explicit = zdd))
    presets

let rbar_parity_qcheck =
  [
    (* R images of random 4-label problems have up to 15 set-labels, so
       their R̄ instances range over genuinely irregular diagrams.  A
       small [rc_limit] keeps the search fast: instances past it are
       skipped (the deterministic chain / coloring cases cover the
       heavy end), everything the explicit path completes must be
       reproduced byte-for-byte. *)
    QCheck.Test.make ~name:"rbar parity on random edge problems" ~count:60
      gen_edge_problem (fun p ->
        match Rounde.r p with
        | exception Failure _ -> true (* dead node constraint: no R image *)
        | { Rounde.problem = p'; _ } -> (
            match run_rbar ~rc_limit:500 ~zdd:false p' with
            | Tripped _ -> true
            | Done _ as explicit ->
                explicit = run_rbar ~rc_limit:500 ~zdd:true p'));
    (* the same contract one level up: a full speedup step R̄ ∘ R *)
    QCheck.Test.make ~name:"step parity on random edge problems" ~count:40
      gen_edge_problem (fun p ->
        match run_step ~rc_limit:500 ~zdd:false p with
        | exception Failure _ -> true (* dead node constraint: no R image *)
        | Tripped _ -> true
        | Done _ as explicit -> explicit = run_step ~rc_limit:500 ~zdd:true p);
  ]

(* ------------------------------------------------------------------ *)
(* Slotted (multi-slot) families vs brute force                        *)
(* ------------------------------------------------------------------ *)

(* Δ = 3 slots of 3 labels each: small enough to enumerate all 7³
   boxes and all 3³ transversal tuples explicitly, wide enough to
   exercise every slot boundary. *)
let lay3x3 = Zdd.layout ~slots:3 ~width:3

let mgr_for lay = Zdd.create ~nbits:(Zdd.layout_bits lay) ()

let gen_slot_masks =
  QCheck.(
    map
      (fun (a, b, c) -> [| a; b; c |])
      (triple (int_bound 7) (int_bound 7) (int_bound 7)))

(* a relation T as an explicit set of transversal tuples (one label
   per slot, labels in 0..2) *)
let gen_tuples =
  QCheck.(
    list_of_size
      Gen.(0 -- 8)
      (triple (int_bound 2) (int_bound 2) (int_bound 2)))

let encode_tuple lay (l0, l1, l2) =
  Zdd.encode_slots lay [| 1 lsl l0; 1 lsl l1; 1 lsl l2 |]

let zdd_of_tuples mgr lay tuples =
  List.fold_left
    (fun acc t -> Zdd.union mgr acc (Zdd.of_mask mgr (encode_tuple lay t)))
    Zdd.bot tuples

let bits mask = List.filter (fun l -> mask land (1 lsl l) <> 0) [ 0; 1; 2 ]

(* all transversals of a 3-slot box, as tuples *)
let transversals masks =
  List.concat_map
    (fun l0 ->
      List.concat_map
        (fun l1 -> List.map (fun l2 -> (l0, l1, l2)) (bits masks.(2)))
        (bits masks.(1)))
    (bits masks.(0))

let cofactor_qcheck =
  let gen_family =
    QCheck.(map IntSet.of_list (list_of_size Gen.(0 -- 12) (int_bound 255)))
  in
  [
    QCheck.Test.make ~name:"cofactor = reference model" ~count:200
      QCheck.(pair (int_bound 7) gen_family)
      (fun (l, fam) ->
        let mgr = Zdd.create ~nbits:8 () in
        let z = zdd_of_family mgr fam in
        let expect =
          IntSet.filter_map
            (fun x ->
              if x land (1 lsl l) <> 0 then Some (x land lnot (1 lsl l))
              else None)
            fam
        in
        IntSet.equal expect (family_of_zdd mgr (Zdd.cofactor mgr l z)));
  ]

let test_slotted_encoding () =
  let lay = lay3x3 in
  check_int "layout bits" 9 (Zdd.layout_bits lay);
  (* slot 0 is the most significant block *)
  check_int "slot 0 label 0 bit" 6 (Zdd.slot_bit lay ~slot:0 ~label:0);
  check_int "slot 2 label 2 bit" 2 (Zdd.slot_bit lay ~slot:2 ~label:2);
  check_int "packing" ((0b101 lsl 6) lor (0b001 lsl 3) lor 0b110)
    (Zdd.encode_slots lay [| 0b101; 0b001; 0b110 |]);
  (* out-of-envelope layouts are rejected at construction *)
  (match Zdd.layout ~slots:21 ~width:3 with
  | _ -> Alcotest.fail "63-bit layout must be rejected"
  | exception Invalid_argument _ -> ())

let slotted_qcheck =
  [
    QCheck.Test.make ~name:"encode/decode roundtrip, numeric = lex order"
      ~count:200
      QCheck.(pair gen_slot_masks gen_slot_masks)
      (fun (a, b) ->
        let lay = lay3x3 in
        let ea = Zdd.encode_slots lay a and eb = Zdd.encode_slots lay b in
        Zdd.decode_slots lay ea = a
        && compare ea eb = compare (Array.to_list a) (Array.to_list b));
    QCheck.Test.make ~name:"one_per_slot = brute-force transversals"
      ~count:200 gen_slot_masks (fun masks ->
        let lay = lay3x3 in
        let mgr = mgr_for lay in
        let expect =
          IntSet.of_list
            (List.map (encode_tuple lay) (transversals masks))
        in
        IntSet.equal expect
          (family_of_zdd mgr (Zdd.one_per_slot mgr lay masks)));
    QCheck.Test.make ~name:"Zdd.boxes = brute-force valid boxes" ~count:150
      gen_tuples (fun tuples ->
        let lay = lay3x3 in
        let mgr = mgr_for lay in
        let t = zdd_of_tuples mgr lay tuples in
        let allowed = List.sort_uniq compare tuples in
        (* reference: every all-non-empty box whose transversals all
           lie in the relation *)
        let expect = ref IntSet.empty in
        for m0 = 1 to 7 do
          for m1 = 1 to 7 do
            for m2 = 1 to 7 do
              let masks = [| m0; m1; m2 |] in
              if
                List.for_all
                  (fun tu -> List.mem tu allowed)
                  (transversals masks)
              then
                expect :=
                  IntSet.add (Zdd.encode_slots lay masks) !expect
            done
          done
        done;
        IntSet.equal !expect (family_of_zdd mgr (Zdd.boxes mgr lay t)));
    (* the tentpole theorem: on a permutation-closed slotted family,
       Coudert maximal-set extraction answers exactly the box-dominance
       verdict (∃ an injective matching of the box's slots into
       supersets ⟺ ∃ a slot permutation σ with bᵢ ⊆ σ(c)ᵢ ⟺ strict
       encoding containment) — no transportation matching needed *)
    QCheck.Test.make ~name:"slotted maximal = permutation dominance"
      ~count:150
      QCheck.(
        list_of_size
          Gen.(1 -- 5)
          (map
             (fun (a, b, c) -> [| a; b; c |])
             (triple (int_range 1 7) (int_range 1 7) (int_range 1 7))))
      (fun boxes ->
        let lay = lay3x3 in
        let mgr = mgr_for lay in
        let perms =
          [
            [| 0; 1; 2 |]; [| 0; 2; 1 |]; [| 1; 0; 2 |];
            [| 1; 2; 0 |]; [| 2; 0; 1 |]; [| 2; 1; 0 |];
          ]
        in
        let permute p c = Array.init 3 (fun i -> c.(p.(i))) in
        (* the orbit closure: all slot arrangements of all boxes *)
        let fam =
          List.fold_left
            (fun acc c ->
              List.fold_left
                (fun acc p ->
                  Zdd.union mgr acc
                    (Zdd.of_mask mgr (Zdd.encode_slots lay (permute p c))))
                acc perms)
            Zdd.bot boxes
        in
        let maxf = Zdd.maximal mgr fam in
        let canonical b =
          let s = Array.copy b in
          Array.sort compare s;
          s
        in
        let subset x y = x land y = x in
        (* reference verdict by direct permutation matching *)
        let dominated b =
          List.exists
            (fun c ->
              List.exists
                (fun p ->
                  let cp = permute p c in
                  Array.for_all2 subset b cp && b <> cp)
                perms)
            boxes
        in
        List.for_all
          (fun b ->
            let cb = canonical b in
            Zdd.mem mgr maxf (Zdd.encode_slots lay cb)
            = not (dominated cb))
          boxes);
  ]

let test_boxes_work_limit () =
  (* the construction budget trips as Zdd.Limit with the realized
     count, which Rounde translates into its budget payload *)
  let lay = Zdd.layout ~slots:3 ~width:6 in
  let mgr = mgr_for lay in
  let full = [| 0b111111; 0b111111; 0b111111 |] in
  let t = Zdd.one_per_slot mgr lay full in
  match Zdd.boxes ~work_limit:5 mgr lay t with
  | _ -> Alcotest.fail "expected Zdd.Limit"
  | exception Zdd.Limit { what; limit; realized } ->
      check Alcotest.string "budget name" "Zdd.boxes: construction work" what;
      check_bool "limit echoed" true (limit = 5.);
      check_bool "realized at the limit" true (realized >= 5)

(* ------------------------------------------------------------------ *)
(* Breaking the Δ wall                                                 *)
(* ------------------------------------------------------------------ *)

let test_wall_col18 () =
  let p = col_problem 18 in
  (* explicit path: the 2^18 - 1 right-closed sets blow the rc budget *)
  (match run_rbar ~zdd:false p with
  | Done _ -> Alcotest.fail "col18 must trip the explicit rc budget"
  | Tripped budget ->
      check_bool "trips the rc budget" true (contains ~sub:"right-closed" budget);
      check_bool "realized count in payload" true
        (contains ~sub:"realized" budget));
  (* ZDD path: completes, and R̄(col_k) = col_k *)
  match run_rbar ~zdd:true p with
  | Tripped budget -> Alcotest.failf "col18 tripped on the zdd path: %s" budget
  | Done (_, denotations, rc_sets) ->
      check_int "rc family counted in full" ((1 lsl 18) - 1) rc_sets;
      check_int "one box per color" 18 Rounde.stats.Rounde.boxes_emitted;
      check_int "singleton denotations" 18 (List.length denotations)

let test_wall_col19_symbolic () =
  (* one past the PR 8 wall: the streaming engine used to trip "box
     enumeration work (zdd)" here.  Δ·n = 57 ≤ 62, so the fully
     symbolic output side takes over and the instance completes — the
     family of 2^19 - 1 right-closed sets and the 19-fold tuple
     relation are never materialized. *)
  let p = col_problem 19 in
  (match run_rbar ~zdd:false p with
  | Done _ -> Alcotest.fail "col19 must trip the explicit rc budget"
  | Tripped budget ->
      check_bool "explicit still trips the rc budget" true
        (contains ~sub:"right-closed" budget));
  match run_rbar ~zdd:true p with
  | Tripped budget -> Alcotest.failf "col19 tripped on the zdd path: %s" budget
  | Done (_, denotations, rc_sets) ->
      check_int "rc family counted in full" ((1 lsl 19) - 1) rc_sets;
      check_int "singleton denotations" 19 (List.length denotations);
      let s = Rounde.stats in
      check_int "allowed tuples" 19 s.Rounde.maxbox_tuples;
      check_int "valid cubes" 19 s.Rounde.maxbox_cubes;
      check_int "maximal cubes" 19 s.Rounde.maxbox_maximal;
      check_int "canonical boxes" 19 s.Rounde.maxbox_enumerated

let test_wall_col21_streaming () =
  (* past the symbolic envelope (Δ·n = 63 > 62 bits): the engine falls
     back to the streaming DFS, whose work budget trips under its
     distinct name so bench records can tell the walls apart *)
  match run_rbar ~zdd:true (col_problem 21) with
  | Done _ -> Alcotest.fail "col21 should exceed the zdd work budget"
  | Tripped budget ->
      check_bool "distinct budget name" true
        (contains ~sub:"box enumeration work (zdd)" budget)

(* ------------------------------------------------------------------ *)
(* Toggle plumbing and instrumentation                                 *)
(* ------------------------------------------------------------------ *)

let test_parctl_zdd_parse () =
  let open Parctl in
  check_bool "unset" true (parse_zdd_env None = Zdd_unset);
  List.iter
    (fun s -> check_bool s true (parse_zdd_env (Some s) = Zdd_enabled true))
    [ "1"; "true"; "YES"; " on " ];
  List.iter
    (fun s -> check_bool s true (parse_zdd_env (Some s) = Zdd_enabled false))
    [ "0"; "false"; "no"; "OFF"; "" ];
  check_bool "malformed" true
    (parse_zdd_env (Some "maybe") = Zdd_malformed "maybe");
  check_bool "resolve Some wins" true (resolve_zdd (Some true));
  (* malformed env warns exactly once and reads as off *)
  let warnings = ref [] in
  let saved = !warn_hook in
  warn_hook := (fun m -> warnings := m :: !warnings);
  reset_warned ();
  Unix.putenv zdd_env_var "maybe";
  check_bool "malformed reads off" false (zdd_from_env ());
  check_bool "second read stays quiet" false (zdd_from_env ());
  Unix.putenv zdd_env_var "";
  warn_hook := saved;
  check_int "warned once" 1 (List.length !warnings);
  check_bool "warning names the variable" true
    (contains ~sub:"RELIM_ZDD" (List.hd !warnings))

let test_zdd_stats () =
  Zdd.reset_stats ();
  check_int "reset nodes" 0 Zdd.stats.Zdd.nodes;
  check_int "reset peak" 0 Zdd.stats.Zdd.peak_unique;
  (match run_rbar ~zdd:true (col_problem 8) with
  | Done _ -> ()
  | Tripped b -> Alcotest.failf "col8 tripped: %s" b);
  check_bool "nodes counted" true (Zdd.stats.Zdd.nodes > 0);
  check_bool "peak tracks the table" true
    (Zdd.stats.Zdd.peak_unique > 0
    && Zdd.stats.Zdd.peak_unique <= Zdd.stats.Zdd.nodes);
  check_bool "lookups bound hits" true
    (Zdd.stats.Zdd.cache_hits <= Zdd.stats.Zdd.cache_lookups)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "zdd"
    [
      ( "engine",
        [
          Alcotest.test_case "basics" `Quick test_zdd_basics;
          Alcotest.test_case "node limit" `Quick test_zdd_node_limit;
          Alcotest.test_case "iter limit" `Quick test_zdd_iter_limit;
        ]
        @ List.map Qseed.to_alcotest zdd_qcheck );
      ( "right-closed families",
        [
          Alcotest.test_case "chain24" `Quick test_rc_chain24;
          Alcotest.test_case "antichain compression" `Quick
            test_rc_antichain_compression;
          Alcotest.test_case "zdd budgets" `Quick test_rc_zdd_budgets;
          Alcotest.test_case "explicit realized payload" `Quick
            test_rc_explicit_realized_payload;
        ]
        @ List.map Qseed.to_alcotest rc_qcheck );
      ( "engine parity",
        [
          Alcotest.test_case "presets" `Quick test_step_parity_presets;
          Alcotest.test_case "all library presets" `Slow
            test_step_parity_all_presets;
          Alcotest.test_case "chain and coloring families" `Quick
            test_rbar_parity_families;
        ]
        @ List.map Qseed.to_alcotest rbar_parity_qcheck );
      ( "slotted families",
        [
          Alcotest.test_case "encoding layout" `Quick test_slotted_encoding;
          Alcotest.test_case "boxes work limit payload" `Quick
            test_boxes_work_limit;
        ]
        @ List.map Qseed.to_alcotest (cofactor_qcheck @ slotted_qcheck) );
      ( "the Δ wall",
        [
          Alcotest.test_case "col18: explicit trips, zdd completes" `Slow
            test_wall_col18;
          Alcotest.test_case "col19: symbolic output side completes" `Slow
            test_wall_col19_symbolic;
          Alcotest.test_case "col21: streaming fallback budget" `Slow
            test_wall_col21_streaming;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "RELIM_ZDD parsing" `Quick test_parctl_zdd_parse;
          Alcotest.test_case "global stats" `Quick test_zdd_stats;
        ] );
    ]
