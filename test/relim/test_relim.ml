(* Tests for the round-elimination engine. *)

open Relim

let check = Alcotest.check
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Labelset                                                            *)
(* ------------------------------------------------------------------ *)

let test_labelset_basics () =
  let s = Labelset.of_list [ 0; 2; 5 ] in
  check_int "cardinal" 3 (Labelset.cardinal s);
  check_bool "mem 2" true (Labelset.mem 2 s);
  check_bool "mem 1" false (Labelset.mem 1 s);
  check Alcotest.(list int) "elements" [ 0; 2; 5 ] (Labelset.elements s);
  check_bool "subset" true (Labelset.subset (Labelset.of_list [ 0; 5 ]) s);
  check_bool "not subset" false (Labelset.subset (Labelset.of_list [ 1 ]) s);
  check_bool "strict subset" true
    (Labelset.strict_subset (Labelset.of_list [ 0 ]) s);
  check_bool "not strict (equal)" false (Labelset.strict_subset s s);
  check_int "choose" 0 (Labelset.choose s);
  check_bool "remove" false (Labelset.mem 2 (Labelset.remove 2 s))

let test_labelset_subsets () =
  let s = Labelset.of_list [ 1; 3; 4 ] in
  let subs = Labelset.nonempty_subsets s in
  check_int "2^3 - 1 subsets" 7 (List.length subs);
  List.iter
    (fun sub -> check_bool "subset of s" true (Labelset.subset sub s))
    subs;
  (* all distinct *)
  let sorted = List.sort_uniq Labelset.compare subs in
  check_int "distinct" 7 (List.length sorted)

let test_labelset_bounds () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Labelset: label 60 out of range") (fun () ->
      ignore (Labelset.singleton Labelset.max_label));
  check_int "full cardinal" 10 (Labelset.cardinal (Labelset.full 10))

let labelset_qcheck =
  let gen_set = QCheck.(map Labelset.of_bits (map (fun x -> x land 0xFFFF) small_nat)) in
  [
    QCheck.Test.make ~name:"union-commutative" ~count:200
      (QCheck.pair gen_set gen_set) (fun (a, b) ->
        Labelset.equal (Labelset.union a b) (Labelset.union b a));
    QCheck.Test.make ~name:"inter-subset" ~count:200
      (QCheck.pair gen_set gen_set) (fun (a, b) ->
        Labelset.subset (Labelset.inter a b) a);
    QCheck.Test.make ~name:"diff-disjoint" ~count:200
      (QCheck.pair gen_set gen_set) (fun (a, b) ->
        Labelset.is_empty (Labelset.inter (Labelset.diff a b) b));
    QCheck.Test.make ~name:"cardinal-elements" ~count:200 gen_set (fun s ->
        List.length (Labelset.elements s) = Labelset.cardinal s);
    QCheck.Test.make ~name:"inter-cardinal" ~count:200
      (QCheck.pair gen_set gen_set) (fun (a, b) ->
        Labelset.inter_cardinal a b = Labelset.cardinal (Labelset.inter a b));
  ]

(* ------------------------------------------------------------------ *)
(* Multiset                                                            *)
(* ------------------------------------------------------------------ *)

let test_multiset_basics () =
  let m = Multiset.of_list [ 2; 0; 2; 1; 2 ] in
  check_int "size" 5 (Multiset.size m);
  check_int "count 2" 3 (Multiset.count m 2);
  check_int "count 7" 0 (Multiset.count m 7);
  check Alcotest.(list int) "to_list sorted" [ 0; 1; 2; 2; 2 ]
    (Multiset.to_list m);
  let m' = Multiset.replace_one ~remove:2 ~add:5 m in
  check_int "after replace: count 2" 2 (Multiset.count m' 2);
  check_int "after replace: count 5" 1 (Multiset.count m' 5);
  check_int "size preserved" 5 (Multiset.size m');
  Alcotest.check_raises "remove absent" Not_found (fun () ->
      ignore (Multiset.remove_one 9 m))

let test_multiset_sub () =
  let m = Multiset.of_counts [ (0, 2); (1, 1) ] in
  let subs = ref [] in
  Multiset.sub_multisets m (fun s -> subs := s :: !subs);
  (* (2+1) * (1+1) = 6 sub-multisets *)
  check_int "sub-multiset count" 6 (List.length !subs);
  let of_size k =
    let acc = ref 0 in
    Multiset.sub_multisets_of_size k m (fun _ -> incr acc);
    !acc
  in
  check_int "size-0" 1 (of_size 0);
  check_int "size-1" 2 (of_size 1);
  check_int "size-2" 2 (of_size 2);
  check_int "size-3" 1 (of_size 3)

let multiset_qcheck =
  let gen = QCheck.(small_list (int_bound 6)) in
  [
    QCheck.Test.make ~name:"of_list-size" ~count:200 gen (fun ls ->
        Multiset.size (Multiset.of_list ls) = List.length ls);
    QCheck.Test.make ~name:"support-subset" ~count:200 gen (fun ls ->
        let m = Multiset.of_list ls in
        List.for_all (fun l -> Labelset.mem l (Multiset.support m)) ls);
    QCheck.Test.make ~name:"add-remove-roundtrip" ~count:200 gen (fun ls ->
        let m = Multiset.of_list ls in
        Multiset.equal m (Multiset.remove_one 3 (Multiset.add 3 m)));
  ]

(* ------------------------------------------------------------------ *)
(* Line / Constr                                                       *)
(* ------------------------------------------------------------------ *)

let alpha5 = Alphabet.create [ "M"; "P"; "O"; "A"; "X" ]

let line s = Parse.line alpha5 s

let test_line_basics () =
  let l = line "M^2 [PO]^3" in
  check_int "arity" 5 (Line.arity l);
  check_bool "contains M M P P O" true
    (Line.contains l (Multiset.of_list [ 0; 0; 1; 1; 2 ]));
  check_bool "contains M M P P P" true
    (Line.contains l (Multiset.of_list [ 0; 0; 1; 1; 1 ]));
  check_bool "not contains M P P P P" false
    (Line.contains l (Multiset.of_list [ 0; 1; 1; 1; 1 ]));
  check_bool "not contains wrong arity" false
    (Line.contains l (Multiset.of_list [ 0; 0; 1; 1 ]));
  check_bool "partial M P" true
    (Line.contains_partial l (Multiset.of_list [ 0; 1 ]));
  check_bool "partial M M M impossible" false
    (Line.contains_partial l (Multiset.of_list [ 0; 0; 0 ]))

let test_line_covers () =
  let big = line "[MPO]^3" in
  let small = line "M [PO]^2" in
  check_bool "covers" true (Line.covers big small);
  check_bool "not covered" false (Line.covers small big)

let test_line_expand () =
  let l = line "[MP]^2 X" in
  let seen = ref [] in
  Line.expand l (fun m -> seen := Multiset.to_list m :: !seen);
  let distinct = List.sort_uniq compare !seen in
  (* MM X, MP X, PP X *)
  check_int "distinct expansions" 3 (List.length distinct)

let test_constr () =
  let c = Constr.make [ line "M^5"; line "P O^4" ] in
  check_int "arity" 5 (Constr.arity c);
  check_bool "mem M^5" true (Constr.mem c (Multiset.of_list [ 0; 0; 0; 0; 0 ]));
  check_bool "mem P O^4" true
    (Constr.mem c (Multiset.of_list [ 1; 2; 2; 2; 2 ]));
  check_bool "not mem P P O^3" false
    (Constr.mem c (Multiset.of_list [ 1; 1; 2; 2; 2 ]));
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Constr.make: lines of different arity") (fun () ->
      ignore (Constr.make [ line "M M"; line "M" ]))

let test_constr_expand () =
  let c = Constr.make [ line "[MP] O"; line "M [OP]" ] in
  let configs = Constr.expand c in
  (* MO, PO, MP: the overlap MO appears once. *)
  check_int "deduplicated" 3 (List.length configs)

(* ------------------------------------------------------------------ *)
(* Parse                                                               *)
(* ------------------------------------------------------------------ *)

let test_parse_forms () =
  let l1 = Parse.line alpha5 "M M M" in
  let l2 = Parse.line alpha5 "M^3" in
  check_bool "equivalent forms" true (Line.equal l1 l2);
  let l3 = Parse.line alpha5 "[P O] X" in
  let l4 = Parse.line alpha5 "[PO] X" in
  check_bool "bracket forms" true (Line.equal l3 l4)

let test_parse_errors () =
  let fails f = match f () with
    | exception Failure _ -> true
    | _ -> false
  in
  check_bool "unknown label" true (fails (fun () -> Parse.line alpha5 "Z"));
  check_bool "unclosed bracket" true (fails (fun () -> Parse.line alpha5 "[MP"));
  check_bool "missing count" true (fails (fun () -> Parse.line alpha5 "M^"));
  check_bool "empty disjunction" true (fails (fun () -> Parse.line alpha5 "[]"))

let test_parse_problem () =
  let p = Parse.problem ~name:"mis" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O" in
  check_int "labels" 3 (Problem.label_count p);
  check_int "delta" 3 (Problem.delta p);
  check Alcotest.(list string) "names"
    [ "M"; "P"; "O" ]
    (List.map (Alphabet.name p.alpha) (Alphabet.labels p.alpha))

let test_scan_labels () =
  check Alcotest.(list string) "scan" [ "M"; "P"; "O" ]
    (Parse.scan_labels "M M M; P [OM] O")

(* ------------------------------------------------------------------ *)
(* Diagram                                                             *)
(* ------------------------------------------------------------------ *)

let mis3 = Parse.problem ~name:"MIS" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O"

let test_edge_diagram_mis () =
  (* Figure 1: O is stronger than P; M unrelated to both. *)
  let d = Diagram.edge_diagram mis3 in
  let l name = Alphabet.find mis3.alpha name in
  check_bool "O >= P" true (Diagram.geq d (l "O") (l "P"));
  check_bool "O > P" true (Diagram.gt d (l "O") (l "P"));
  check_bool "P not >= O" false (Diagram.geq d (l "P") (l "O"));
  check_bool "M not >= P" false (Diagram.geq d (l "M") (l "P"));
  check_bool "M not >= O" false (Diagram.geq d (l "M") (l "O"));
  check_bool "P not >= M" false (Diagram.geq d (l "P") (l "M"));
  check Alcotest.(list (pair int int)) "hasse"
    [ (l "P", l "O") ]
    (Diagram.hasse_edges d)

let test_right_closed_mis () =
  let d = Diagram.edge_diagram mis3 in
  let sets = Diagram.right_closed_sets d in
  let l name = Alphabet.find mis3.alpha name in
  (* Right-closed sets: any set where P implies O. With labels M,P,O:
     all subsets except those containing P without O: {P}, {M,P}.
     7 non-empty - 2 = 5. *)
  check_int "count" 5 (List.length sets);
  check_bool "PO is right-closed" true
    (Diagram.is_right_closed d (Labelset.of_list [ l "P"; l "O" ]));
  check_bool "P alone is not" false
    (Diagram.is_right_closed d (Labelset.of_list [ l "P" ]))

let test_minimal_elements () =
  let d = Diagram.edge_diagram mis3 in
  let l name = Alphabet.find mis3.alpha name in
  let s = Labelset.of_list [ l "P"; l "O"; l "M" ] in
  let mins = Diagram.minimal_elements d s in
  check_bool "P minimal" true (Labelset.mem (l "P") mins);
  check_bool "M minimal" true (Labelset.mem (l "M") mins);
  check_bool "O not minimal" false (Labelset.mem (l "O") mins)

let test_node_diagram_exact_vs_condensed () =
  (* On an expandable instance the two node-diagram computations must
     agree wherever the condensed one reports a relation (it is sound
     but possibly incomplete). *)
  let p =
    Parse.problem ~name:"pi" ~node:"M^5 X^2\nA^4 X^3\nP O^6"
      ~edge:"M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]"
  in
  let exact = Diagram.node_diagram ~expand_limit:1e7 p in
  let approx = Diagram.node_diagram ~expand_limit:1. p in
  check_bool "exact mode" true (Diagram.is_exact exact);
  check_bool "approx mode" false (Diagram.is_exact approx);
  let n = Problem.label_count p in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if Diagram.geq approx a b then
        check_bool
          (Printf.sprintf "approx(%d>=%d) implies exact" a b)
          true (Diagram.geq exact a b)
    done
  done

(* ------------------------------------------------------------------ *)
(* Rounde                                                              *)
(* ------------------------------------------------------------------ *)

let test_r_mis () =
  let { Rounde.problem = p'; denotations } = Rounde.r mis3 in
  check_int "4 labels" 4 (Problem.label_count p');
  check_int "2 edge lines" 2 (List.length (Constr.lines p'.edge));
  check_int "2 node lines" 2 (List.length (Constr.lines p'.node));
  (* Denotations must be the sets {M}, {PO}, {O}, {MO}. *)
  let l name = Alphabet.find mis3.alpha name in
  let expected =
    List.sort Labelset.compare
      [
        Labelset.of_list [ l "M" ];
        Labelset.of_list [ l "P"; l "O" ];
        Labelset.of_list [ l "O" ];
        Labelset.of_list [ l "M"; l "O" ];
      ]
  in
  check_bool "denotations" true
    (List.equal Labelset.equal expected
       (List.sort Labelset.compare (Array.to_list denotations)))

let test_sinkless_orientation_fixed_point () =
  let so =
    Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I"
  in
  let { Rounde.problem = so2; _ } = Rounde.step so in
  let { Rounde.problem = so3; _ } = Rounde.step so2 in
  check_bool "fixed point" true (Iso.equal_up_to_renaming so2 so3)

let test_rbar_labels_right_closed () =
  (* Observation 4: every label of Rbar(R(Pi)) is right-closed w.r.t.
     the node diagram of R(Pi). *)
  let { Rounde.problem = p'; _ } = Rounde.r mis3 in
  let d = Diagram.node_diagram p' in
  let { Rounde.problem = _; denotations } = Rounde.rbar p' in
  Array.iter
    (fun set ->
      check_bool "right-closed" true (Diagram.is_right_closed d set))
    denotations

let test_rbar_maximality () =
  (* No node line of Rbar output strictly dominates another. *)
  let { Rounde.problem = p'; _ } = Rounde.r mis3 in
  let { Rounde.problem = p''; denotations } = Rounde.rbar p' in
  let boxes =
    List.map
      (fun line ->
        match Line.to_multiset line with
        | Some m -> List.map (fun l -> denotations.(l)) (Multiset.to_list m)
        | None -> Alcotest.fail "non-concrete rbar output")
      (Constr.lines p''.node)
  in
  let dominates a b =
    (* b <= a slotwise up to permutation, strictly *)
    let a = Array.of_list a and b = Array.of_list b in
    Array.length a = Array.length b
    && Util.transport_feasible
         ~supply:(Array.map (fun _ -> 1) b)
         ~demand:(Array.map (fun _ -> 1) a)
         ~allowed:(fun i j -> Labelset.subset b.(i) a.(j))
  in
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            check_bool "antichain" false
              (dominates a b && not (dominates b a)))
        boxes)
    boxes

let test_rbar_guard () =
  (* 21 pairwise-unrelated labels: the node diagram is an antichain, so
     there are 2^21 - 1 right-closed sets and the rc budget must trip.
     (The seed refused anything over 20 labels outright; the budget now
     depends on the actual diagram, not on the label count — see the
     24-label chain test below, which succeeds.)  [~zdd:false] pins the
     explicit path: this guard is specifically about the explicit
     enumeration's budget, which the ZDD path does not have (test/zdd
     covers that path's own budgets). *)
  let big =
    Parse.problem ~name:"big"
      ~node:"A B C D E F G H I J K L M N O P Q R S T U"
      ~edge:"[ABCDEFGHIJKLMNOPQRSTU] [ABCDEFGHIJKLMNOPQRSTU]"
  in
  match Rounde.rbar ~zdd:false big with
  | exception Budget.Budget_exceeded { budget; _ } ->
      let has needle =
        let len = String.length needle in
        let rec scan i =
          i + len <= String.length budget
          && (String.sub budget i len = needle || scan (i + 1))
        in
        scan 0
      in
      check_bool "budget name" true (has "right-closed")
  | _ -> Alcotest.fail "expected right-closed-set budget overrun"

let test_r_empty_node () =
  (* Label Y appears on no edge line, so the only node line dies during
     R; the engine must say so instead of building a problem with an
     empty node constraint. *)
  let dead = Parse.problem ~name:"dead" ~node:"Y A A" ~edge:"A A" in
  match Rounde.r dead with
  | exception Failure msg ->
      let needle = "empty node constraint" in
      let len = String.length needle in
      let rec scan i =
        i + len <= String.length msg
        && (String.sub msg i len = needle || scan (i + 1))
      in
      check_bool "names the empty node constraint" true (scan 0)
  | _ -> Alcotest.fail "expected an empty-node-constraint failure"

let test_step_speedup_on_coloring () =
  (* 3-coloring on a path (Delta = 2): a classic log*-round problem;
     one speedup step must keep it non-0-round solvable but change the
     problem. *)
  let col =
    Parse.problem ~name:"3col" ~node:"A A\nB B\nC C" ~edge:"A [BC]\nB C"
  in
  let { Rounde.problem = next; _ } = Rounde.step col in
  check_bool "label growth" true (Problem.label_count next >= 3)

(* ------------------------------------------------------------------ *)
(* Relax                                                               *)
(* ------------------------------------------------------------------ *)

let test_relax_reflexive () =
  let m = Multiset.of_list [ 0; 1; 2 ] in
  check_bool "reflexive" true
    (Relax.multiset_relaxes ~leq:Relax.label_equal m m)

let test_relax_with_order () =
  (* 0 <= 1 <= 2 *)
  let leq a b = a <= b in
  let y = Multiset.of_list [ 0; 1 ] in
  let z = Multiset.of_list [ 1; 2 ] in
  check_bool "relaxes upward" true (Relax.multiset_relaxes ~leq y z);
  check_bool "not downward" false (Relax.multiset_relaxes ~leq z y);
  let z_bad = Multiset.of_list [ 0; 0 ] in
  check_bool "no matching" false (Relax.multiset_relaxes ~leq y z_bad)

let test_relax_constr () =
  let c1 = Constr.make [ Parse.line alpha5 "M P" ] in
  let c2 = Constr.make [ Parse.line alpha5 "[MP] [MP]" ] in
  check_bool "into disjunction" true
    (Relax.constr_relaxes ~leq:Relax.label_equal c1 c2);
  check_bool "not conversely" false
    (Relax.constr_relaxes ~leq:Relax.label_equal c2 c1)

(* Regression: a disjunctive target line silently never matched under
   the old slot-by-slot matcher; the precondition is now enforced. *)
let test_relax_nonconcrete_rejected () =
  let c = Constr.make [ Parse.line alpha5 "M [PO]" ] in
  let y = Multiset.of_list [ 0; 1 ] in
  Alcotest.check_raises "non-concrete line rejected"
    (Invalid_argument
       "Relax.multiset_relaxes_into_constr: constraint has a non-concrete \
        line (disjunction group); expand it first or use constr_relaxes")
    (fun () ->
      ignore (Relax.multiset_relaxes_into_constr ~leq:Relax.label_equal y c))

(* Regression: budget trips in the relaxation checker surface as the
   typed [Budget.Budget_exceeded] (echoing the configured limit), not
   as a bare [Failure _]. *)
let test_relax_budget_typed () =
  let big = Constr.make [ Parse.line alpha5 "[MPOAX] [MPOAX] [MPOAX]" ] in
  match Relax.constr_relaxes ~limit:3. ~leq:Relax.label_equal big big with
  | _ -> Alcotest.fail "expected Budget_exceeded"
  | exception Budget.Budget_exceeded { budget; limit } ->
      check_bool "names the expansion budget" true
        (budget = "Constr.expand: constraint expansion");
      check_bool "echoes the limit" true (limit = 3.)

(* Property suite: the transport-based decision procedures pinned
   against brute-force references — explicit permutation matching for
   configurations, full expansion of both sides for constraints. *)
let relax_qcheck =
  (* Random preorders on {0..3}: reflexive-transitive closure of a
     random relation encoded in 16 bits. *)
  let order_of_bits bits =
    let m = Array.make_matrix 4 4 false in
    for a = 0 to 3 do
      for b = 0 to 3 do
        m.(a).(b) <- a = b || bits land (1 lsl ((4 * a) + b)) <> 0
      done
    done;
    for k = 0 to 3 do
      for a = 0 to 3 do
        for b = 0 to 3 do
          if m.(a).(k) && m.(k).(b) then m.(a).(b) <- true
        done
      done
    done;
    m
  in
  let ref_relaxes ~leq y z =
    let ys = Multiset.to_list y and zs = Multiset.to_list z in
    List.length ys = List.length zs
    &&
    let rec go ys zs =
      match ys with
      | [] -> true
      | y :: rest ->
          let rec pick acc = function
            | [] -> false
            | z :: more ->
                (leq y z && go rest (List.rev_append acc more))
                || pick (z :: acc) more
          in
          pick [] zs
    in
    go ys zs
  in
  let gen_bits = QCheck.(map (fun x -> x land 0xFFFF) small_nat) in
  let gen_mset =
    QCheck.(map Multiset.of_list (list_of_size Gen.(1 -- 4) (0 -- 3)))
  in
  let alpha4 = Alphabet.create [ "A"; "B"; "C"; "D" ] in
  let group_text g =
    let names = List.filteri (fun i _ -> g land (1 lsl i) <> 0) [ "A"; "B"; "C"; "D" ] in
    match names with
    | [ only ] -> only
    | names -> "[" ^ String.concat "" names ^ "]"
  in
  (* A line is 2 slots, each a nonempty subset of {A..D}; a constraint
     is 1-2 such lines.  Kept tiny so full expansion stays exact. *)
  let gen_group = QCheck.(1 -- 15) in
  let gen_line = QCheck.pair gen_group gen_group in
  let gen_constr =
    QCheck.(
      map
        (fun lines ->
          Constr.make
            (List.map
               (fun (g1, g2) ->
                 Parse.line alpha4 (group_text g1 ^ " " ^ group_text g2))
               lines))
        (list_of_size Gen.(1 -- 2) gen_line))
  in
  [
    QCheck.Test.make ~name:"multiset_relaxes = permutation reference"
      ~count:500
      QCheck.(triple gen_bits gen_mset gen_mset)
      (fun (bits, y, z) ->
        let m = order_of_bits bits in
        let leq a b = m.(a).(b) in
        Relax.multiset_relaxes ~leq y z = ref_relaxes ~leq y z);
    QCheck.Test.make ~name:"constr_relaxes = expand-both reference"
      ~count:300
      QCheck.(triple gen_bits gen_constr gen_constr)
      (fun (bits, a, b) ->
        let m = order_of_bits bits in
        let leq x y = m.(x).(y) in
        let ref_result =
          let zs = Constr.expand b in
          List.for_all
            (fun y -> List.exists (fun z -> ref_relaxes ~leq y z) zs)
            (Constr.expand a)
        in
        Relax.constr_relaxes ~leq a b = ref_result);
    QCheck.Test.make ~name:"multiset_relaxes_into_constr = expand reference"
      ~count:300
      QCheck.(triple gen_bits gen_mset gen_constr)
      (fun (bits, y, c) ->
        let m = order_of_bits bits in
        let leq a b = m.(a).(b) in
        (* Concretize: one line per expanded configuration. *)
        let concrete =
          Constr.make
            (List.map Line.of_multiset (Constr.expand c))
        in
        Relax.multiset_relaxes_into_constr ~leq y concrete
        = List.exists (fun z -> ref_relaxes ~leq y z) (Constr.expand c));
  ]

(* ------------------------------------------------------------------ *)
(* Zeroround                                                           *)
(* ------------------------------------------------------------------ *)

let test_zeroround_mis () =
  check_bool "mirrored" true (Zeroround.solvable_mirrored mis3 = None);
  check_bool "arbitrary" true (Zeroround.solvable_arbitrary_ports mis3 = None);
  match Zeroround.randomized_failure_bound mis3 with
  | Some b ->
      (* 2 configurations, Delta 3: 1/36. *)
      Alcotest.(check (float 1e-9)) "bound" (1. /. 36.) b
  | None -> Alcotest.fail "expected a bound"

let test_zeroround_trivial () =
  let triv = Parse.problem ~name:"t" ~node:"A A A" ~edge:"A A" in
  check_bool "mirrored solvable" true (Zeroround.solvable_mirrored triv <> None);
  check_bool "arbitrary solvable" true
    (Zeroround.solvable_arbitrary_ports triv <> None);
  check_bool "no bound" true (Zeroround.randomized_failure_bound triv = None)

let test_zeroround_mirrored_but_not_arbitrary () =
  (* Node picks one L and one R; L only compatible with R.  Under
     mirrored ports assign L to port 0 and R to port 1: LL on edge
     0... not self-compatible. Use instead: edge LL and RR allowed but
     LR not: mirrored works (any port assignment), arbitrary fails. *)
  let p = Parse.problem ~name:"halves" ~node:"L R" ~edge:"L L\nR R" in
  check_bool "mirrored ok" true (Zeroround.solvable_mirrored p <> None);
  check_bool "arbitrary fails" true (Zeroround.solvable_arbitrary_ports p = None)

let test_self_compatible () =
  let s = Zeroround.self_compatible mis3 in
  let l name = Alphabet.find mis3.alpha name in
  check_bool "O self" true (Labelset.mem (l "O") s);
  check_bool "M not" false (Labelset.mem (l "M") s);
  check_bool "P not" false (Labelset.mem (l "P") s)

(* ------------------------------------------------------------------ *)
(* Iso                                                                 *)
(* ------------------------------------------------------------------ *)

let test_iso_identity () =
  check_bool "identity" true (Iso.equal_up_to_renaming mis3 mis3)

let test_iso_renamed () =
  let renamed =
    Parse.problem ~name:"MIS2" ~node:"Z Z Z\nQ W W" ~edge:"Z [QW]\nW W"
  in
  (match Iso.find_renaming mis3 renamed with
  | Some assoc ->
      let name_of l = Alphabet.name renamed.alpha l in
      let m = List.assoc (Alphabet.find mis3.alpha "M") assoc in
      check Alcotest.string "M maps to Z" "Z" (name_of m)
  | None -> Alcotest.fail "renaming not found");
  check_bool "renamed equal" true (Iso.equal_up_to_renaming mis3 renamed)

let test_iso_negative () =
  let other = Parse.problem ~name:"x" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O\nP P" in
  check_bool "different problems" false (Iso.equal_up_to_renaming mis3 other)

let test_diagram_dot () =
  let dot = Diagram.to_dot (Diagram.edge_diagram mis3) in
  check_bool "has edge" true
    (let re_needle = "\"P\" -> \"O\"" in
     let len = String.length re_needle in
     let rec scan i =
       i + len <= String.length dot
       && (String.sub dot i len = re_needle || scan (i + 1))
     in
     scan 0);
  check_bool "digraph header" true (String.length dot > 10 && String.sub dot 0 7 = "digraph")

let test_apply_renaming () =
  let renamed = Iso.apply_renaming mis3 [ ("M", "Z") ] in
  check_bool "Z exists" true (Alphabet.mem_name renamed.alpha "Z");
  check_bool "M gone" false (Alphabet.mem_name renamed.alpha "M");
  check_bool "still isomorphic" true (Iso.equal_up_to_renaming mis3 renamed)

(* ------------------------------------------------------------------ *)
(* Theorem-level engine properties (qcheck)                            *)
(* ------------------------------------------------------------------ *)

let engine_qcheck =
  let params_gen =
    QCheck.(
      map
        (fun (d, a, x) ->
          let delta = 3 + (d mod 3) in
          let x = x mod max 1 (delta - 1) in
          let a = min delta (x + 2 + (a mod max 1 (delta - x - 1))) in
          (delta, a, x))
        (triple small_nat small_nat small_nat))
  in
  [
    QCheck.Test.make ~name:"r-labels-right-closed-wrt-edge-diagram" ~count:30
      params_gen (fun (delta, a, x) ->
        (* Observation 4 for R. *)
        let group (name, c) =
          if c = 0 then "" else Printf.sprintf " %s^%d" name c
        in
        let config groups = String.concat "" (List.map group groups) in
        let node =
          String.concat "\n"
            [
              config [ ("M", delta - x); ("X", x) ];
              config [ ("A", a); ("X", delta - a) ];
              config [ ("P", 1); ("O", delta - 1) ];
            ]
        in
        let edge = "M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]" in
        let p = Parse.problem ~name:"pi" ~node ~edge in
        let d = Diagram.edge_diagram p in
        let { Rounde.denotations; _ } = Rounde.r p in
        Array.for_all (fun s -> Diagram.is_right_closed d s) denotations);
  ]

let qsuite name tests =
  (name, List.map (Qseed.to_alcotest) tests)

let main_suites =
  [
      ( "labelset",
        [
          Alcotest.test_case "basics" `Quick test_labelset_basics;
          Alcotest.test_case "subsets" `Quick test_labelset_subsets;
          Alcotest.test_case "bounds" `Quick test_labelset_bounds;
        ] );
      qsuite "labelset-props" labelset_qcheck;
      ( "multiset",
        [
          Alcotest.test_case "basics" `Quick test_multiset_basics;
          Alcotest.test_case "sub-multisets" `Quick test_multiset_sub;
        ] );
      qsuite "multiset-props" multiset_qcheck;
      ( "line",
        [
          Alcotest.test_case "contains" `Quick test_line_basics;
          Alcotest.test_case "covers" `Quick test_line_covers;
          Alcotest.test_case "expand" `Quick test_line_expand;
        ] );
      ( "constr",
        [
          Alcotest.test_case "membership" `Quick test_constr;
          Alcotest.test_case "expand-dedup" `Quick test_constr_expand;
        ] );
      ( "parse",
        [
          Alcotest.test_case "forms" `Quick test_parse_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "problem" `Quick test_parse_problem;
          Alcotest.test_case "scan" `Quick test_scan_labels;
        ] );
      ( "diagram",
        [
          Alcotest.test_case "mis-edge (Fig 1)" `Quick test_edge_diagram_mis;
          Alcotest.test_case "right-closed" `Quick test_right_closed_mis;
          Alcotest.test_case "minimal-elements" `Quick test_minimal_elements;
          Alcotest.test_case "exact-vs-condensed" `Quick
            test_node_diagram_exact_vs_condensed;
        ] );
      ( "rounde",
        [
          Alcotest.test_case "R(MIS)" `Quick test_r_mis;
          Alcotest.test_case "SO fixed point" `Quick
            test_sinkless_orientation_fixed_point;
          Alcotest.test_case "Observation 4" `Quick
            test_rbar_labels_right_closed;
          Alcotest.test_case "antichain" `Quick test_rbar_maximality;
          Alcotest.test_case "rc-budget guard" `Quick test_rbar_guard;
          Alcotest.test_case "empty node constraint" `Quick test_r_empty_node;
          Alcotest.test_case "coloring step" `Quick test_step_speedup_on_coloring;
        ] );
      ( "relax",
        [
          Alcotest.test_case "reflexive" `Quick test_relax_reflexive;
          Alcotest.test_case "ordered" `Quick test_relax_with_order;
          Alcotest.test_case "constraints" `Quick test_relax_constr;
          Alcotest.test_case "non-concrete rejected" `Quick
            test_relax_nonconcrete_rejected;
          Alcotest.test_case "typed budget" `Quick test_relax_budget_typed;
        ] );
      ( "zeroround",
        [
          Alcotest.test_case "mis" `Quick test_zeroround_mis;
          Alcotest.test_case "trivial" `Quick test_zeroround_trivial;
          Alcotest.test_case "mirrored-vs-arbitrary" `Quick
            test_zeroround_mirrored_but_not_arbitrary;
          Alcotest.test_case "self-compatible" `Quick test_self_compatible;
        ] );
      ( "iso",
        [
          Alcotest.test_case "identity" `Quick test_iso_identity;
          Alcotest.test_case "renamed" `Quick test_iso_renamed;
          Alcotest.test_case "negative" `Quick test_iso_negative;
          Alcotest.test_case "apply" `Quick test_apply_renaming;
          Alcotest.test_case "dot export" `Quick test_diagram_dot;
        ] );
      qsuite "engine-props" engine_qcheck;
      qsuite "relax-props" relax_qcheck;
  ]

(* ------------------------------------------------------------------ *)
(* Simplify                                                            *)
(* ------------------------------------------------------------------ *)

let test_simplify_merge () =
  let p = Parse.problem ~name:"p" ~node:"A B C" ~edge:"A [BC]\nB C" in
  let merged = Simplify.merge p ~from_:"B" ~into_:"C" in
  check_int "one label fewer" 2 (Problem.label_count merged);
  check_bool "B gone" false (Alphabet.mem_name merged.Problem.alpha "B")

let test_merge_soundness () =
  (* In MIS, O is stronger than P on edges but node-wise P cannot be
     replaced by O (P O^2 is allowed, O^3 is not), so the merge is
     unsound; merging P into O would produce a problem where the MIS
     structure is lost. *)
  check_bool "P->O unsound" false
    (Simplify.merge_is_sound mis3 ~from_:"P" ~into_:"O");
  (* A problem with a genuinely redundant label. *)
  let q =
    Parse.problem ~name:"q" ~node:"A [AB] [AB]" ~edge:"[AB] [AB]"
  in
  check_bool "B->A sound" true (Simplify.merge_is_sound q ~from_:"B" ~into_:"A")

let test_merge_equivalent () =
  let q = Parse.problem ~name:"q" ~node:"[AB] [AB] [AB]" ~edge:"[AB] [AB]" in
  let simplified = Simplify.merge_equivalent q in
  check_int "collapsed to 1 label" 1 (Problem.label_count simplified);
  (* MIS has no equivalent labels: unchanged. *)
  check_bool "mis unchanged" true
    (Problem.label_count (Simplify.merge_equivalent mis3) = 3)

let test_drop_redundant () =
  let p =
    Parse.problem ~name:"p" ~node:"[AB] [AB] [AB]\nA B A" ~edge:"[AB] [AB]\nA B"
  in
  let pruned = Simplify.drop_redundant_lines p in
  check_int "node lines" 1 (List.length (Constr.lines pruned.Problem.node));
  check_int "edge lines" 1 (List.length (Constr.lines pruned.Problem.edge))

(* ------------------------------------------------------------------ *)
(* Serialize                                                           *)
(* ------------------------------------------------------------------ *)

let test_serialize_roundtrip () =
  (* Re-parsing may reorder the alphabet, so compare constraints after
     remapping labels by name. *)
  let equal_by_names (a : Problem.t) (b : Problem.t) =
    Alphabet.size a.Problem.alpha = Alphabet.size b.Problem.alpha
    &&
    match
      List.map
        (fun la -> Alphabet.find b.Problem.alpha (Alphabet.name a.Problem.alpha la))
        (Alphabet.labels a.Problem.alpha)
    with
    | mapping_list ->
        let mapping = Array.of_list mapping_list in
        let remap_set set =
          Labelset.fold
            (fun l acc -> Labelset.add mapping.(l) acc)
            set Labelset.empty
        in
        let remap = Constr.map_lines (Line.map_syms remap_set) in
        Constr.equal (remap a.Problem.node) b.Problem.node
        && Constr.equal (remap a.Problem.edge) b.Problem.edge
    | exception Not_found -> false
  in
  let check_roundtrip p =
    let p' = Serialize.of_string (Serialize.to_string p) in
    check_bool ("roundtrip " ^ p.Problem.name) true (equal_by_names p p')
  in
  check_roundtrip mis3;
  check_roundtrip (Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I");
  (* A problem with multi-character labels (from a speedup step). *)
  let { Rounde.problem = stepped; _ } = Rounde.step mis3 in
  check_roundtrip stepped

let test_serialize_errors () =
  match Serialize.of_string "garbage here" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected parse failure"

(* ------------------------------------------------------------------ *)
(* Fixedpoint                                                          *)
(* ------------------------------------------------------------------ *)

let test_fixedpoint_so () =
  let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
  match Fixedpoint.detect so with
  | Fixedpoint.Reaches_fixed_point (steps, p) ->
      check_bool "few steps" true (steps <= 3);
      check_bool "fixed problem not 0-round solvable" true
        (Zeroround.solvable_arbitrary_ports p = None);
      check_bool "lower bound statement" true
        (Fixedpoint.lower_bound_statement (Fixedpoint.detect so) <> None)
  | Fixedpoint.Fixed_point _ -> () (* also acceptable *)
  | Fixedpoint.No_fixed_point_found _ -> Alcotest.fail "SO must stabilize"

let test_fixedpoint_trivial () =
  let triv = Parse.problem ~name:"t" ~node:"A A A" ~edge:"A A" in
  match Fixedpoint.detect triv with
  | Fixedpoint.Fixed_point _ | Fixedpoint.Reaches_fixed_point _ ->
      (* Trivial problems are fixed points but 0-round solvable: no
         lower bound may be claimed. *)
      check_bool "no statement" true
        (Fixedpoint.lower_bound_statement (Fixedpoint.detect triv) = None)
  | Fixedpoint.No_fixed_point_found _ -> Alcotest.fail "trivial is a fixed point"

(* ------------------------------------------------------------------ *)
(* Definitional cross-checks of R and Rbar                             *)
(* ------------------------------------------------------------------ *)

(* Brute-force check of Section 2.3's definitions on a small problem:
   the engine's R must produce (a) an edge constraint whose pairs are
   exactly the maximal all-compatible set pairs, and (b) a node
   constraint containing a multiset of new labels iff some choice of
   members forms an allowed configuration of the original problem. *)
let cross_check_r p =
  let { Rounde.problem = p'; denotations } = Rounde.r p in
  let n_old = Problem.label_count p in
  (* compat matrix *)
  let compat = Array.make_matrix n_old n_old false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> assert false))
    (Constr.lines p.Problem.edge);
  let all_compat s1 s2 =
    Labelset.for_all (fun a -> Labelset.for_all (fun b -> compat.(a).(b)) s2) s1
  in
  (* (a) every engine edge pair is valid and maximal *)
  List.iter
    (fun line ->
      match Line.to_multiset line with
      | Some m ->
          (match Multiset.to_list m with
          | [ l1; l2 ] ->
              let s1 = denotations.(l1) and s2 = denotations.(l2) in
              check_bool "valid pair" true (all_compat s1 s2);
              (* maximal: no strict superset pair still valid *)
              List.iter
                (fun bigger ->
                  if Labelset.strict_subset s1 bigger then
                    check_bool "maximal left" false (all_compat bigger s2))
                (Labelset.nonempty_subsets (Labelset.full n_old))
          | _ -> Alcotest.fail "edge arity")
      | None -> Alcotest.fail "non-concrete R edge line")
    (Constr.lines p'.Problem.edge);
  (* (b) node constraint extensionally correct *)
  let n_new = Problem.label_count p' in
  let delta = Problem.delta p in
  let new_labels = List.init n_new Fun.id in
  Util.multisets new_labels delta (fun labels ->
      let candidate = Multiset.of_list labels in
      let in_engine = Constr.mem p'.Problem.node candidate in
      (* brute-force: exists a choice from the denotations in N_Pi *)
      let rec choices acc = function
        | [] -> Constr.mem p.Problem.node (Multiset.of_list acc)
        | l :: rest ->
            Labelset.exists
              (fun member -> choices (member :: acc) rest)
              denotations.(l)
      in
      check_bool "node extensional" in_engine (choices [] labels))

let test_r_definition_mis () = cross_check_r mis3

let test_r_definition_family () =
  cross_check_r
    (Parse.problem ~name:"pi" ~node:"M^3 X\nA^3 X\nP O^3"
       ~edge:"M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]")

(* Rbar extensional check: a multiset of right-closed sets is dominated
   by some output box iff all its choices are allowed. *)
let test_rbar_definition () =
  let { Rounde.problem = p'; _ } = Rounde.r mis3 in
  let { Rounde.problem = p''; denotations } = Rounde.rbar p' in
  let configs = Constr.expand p'.Problem.node in
  let mem_n m = List.exists (Multiset.equal m) configs in
  let boxes =
    List.map
      (fun line ->
        match Line.to_multiset line with
        | Some m -> List.map (fun l -> denotations.(l)) (Multiset.to_list m)
        | None -> Alcotest.fail "non-concrete")
      (Constr.lines p''.Problem.node)
  in
  let dominated sets =
    List.exists
      (fun box ->
        let a = Array.of_list sets and b = Array.of_list box in
        Util.transport_feasible
          ~supply:(Array.map (fun _ -> 1) a)
          ~demand:(Array.map (fun _ -> 1) b)
          ~allowed:(fun i j -> Labelset.subset a.(i) b.(j)))
      boxes
  in
  let n' = Problem.label_count p' in
  let delta = Constr.arity p'.Problem.node in
  let subsets = Labelset.nonempty_subsets (Labelset.full n') in
  Util.multisets subsets delta (fun sets ->
      let all_choices_ok =
        let rec go acc = function
          | [] -> mem_n (Multiset.of_list acc)
          | s :: rest ->
              Labelset.for_all (fun l -> go (l :: acc) rest) s
        in
        go [] sets
      in
      check_bool "box iff dominated" all_choices_ok (dominated sets))

(* Transportation feasibility cross-checked against brute-force
   perfect-matching search on small instances. *)
let transport_qcheck =
  let gen =
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 4) (int_range 1 3))
        (list_of_size (Gen.int_range 1 4) (int_range 1 3))
        (int_range 0 65535))
  in
  [
    QCheck.Test.make ~name:"transport-equals-bruteforce" ~count:200 gen
      (fun (supply, demand, mask) ->
        let supply = Array.of_list supply and demand = Array.of_list demand in
        let ns = Array.length supply and nd = Array.length demand in
        let allowed i j = (mask lsr ((i * nd) + j)) land 1 = 1 in
        let fast = Util.transport_feasible ~supply ~demand ~allowed in
        (* Brute force: expand to unit items and search for a perfect
           assignment by backtracking. *)
        let total_s = Array.fold_left ( + ) 0 supply in
        let total_d = Array.fold_left ( + ) 0 demand in
        let slow =
          total_s = total_d
          &&
          let items =
            List.concat
              (List.init ns (fun i -> List.init supply.(i) (fun _ -> i)))
          in
          let remaining = Array.copy demand in
          let rec place = function
            | [] -> true
            | i :: rest ->
                let ok = ref false in
                for j = 0 to nd - 1 do
                  if (not !ok) && remaining.(j) > 0 && allowed i j then begin
                    remaining.(j) <- remaining.(j) - 1;
                    if place rest then ok := true;
                    remaining.(j) <- remaining.(j) + 1
                  end
                done;
                !ok
          in
          place items
        in
        fast = slow);
  ]

(* Theorem 3 sanity (easy direction): if a problem is 0-round solvable
   in the PN model (arbitrary ports), its speedup step must remain
   0-round solvable — complexity max(T-1, 0) = 0.  Tested on random
   3-label, Delta=3 problems small enough for the full engine. *)
let theorem3_qcheck =
  let gen =
    (* Random node constraint: a non-empty subset of the 10 multisets
       of size 3 over 3 labels; random symmetric edge compatibility. *)
    QCheck.(pair (int_range 1 1023) (int_range 1 63))
  in
  [
    QCheck.Test.make ~name:"speedup-preserves-0-round-solvability" ~count:60
      gen
      (fun (node_mask, edge_mask) ->
        let alpha = Alphabet.create [ "A"; "B"; "C" ] in
        let multisets3 = ref [] in
        Util.multisets [ 0; 1; 2 ] 3 (fun ls -> multisets3 := ls :: !multisets3);
        let node_lines =
          List.filteri (fun i _ -> (node_mask lsr i) land 1 = 1) !multisets3
          |> List.map (fun ls -> Line.of_multiset (Multiset.of_list ls))
        in
        let pairs = [ (0, 0); (0, 1); (0, 2); (1, 1); (1, 2); (2, 2) ] in
        let edge_lines =
          List.filteri (fun i _ -> (edge_mask lsr i) land 1 = 1) pairs
          |> List.map (fun (a, b) -> Line.of_multiset (Multiset.of_list [ a; b ]))
        in
        if node_lines = [] || edge_lines = [] then true
        else begin
          let p =
            Problem.make ~name:"rnd" ~alpha
              ~node:(Constr.make node_lines)
              ~edge:(Constr.make edge_lines)
          in
          match Zeroround.solvable_arbitrary_ports p with
          | None -> true (* nothing to check in this direction *)
          | Some _ -> begin
              match Rounde.step p with
              | { Rounde.problem = stepped; _ } ->
                  Zeroround.solvable_arbitrary_ports stepped <> None
              | exception Budget.Budget_exceeded _ -> true (* budget; skip *)
            end
        end);
  ]

(* Random small problems shared by several property suites. *)
let random_problem (node_mask, edge_mask) =
  let multisets3 = ref [] in
  Util.multisets [ 0; 1; 2 ] 3 (fun ls -> multisets3 := ls :: !multisets3);
  let node_lines =
    List.filteri (fun i _ -> (node_mask lsr i) land 1 = 1) !multisets3
    |> List.map (fun ls -> Line.of_multiset (Multiset.of_list ls))
  in
  let pairs = [ (0, 0); (0, 1); (0, 2); (1, 1); (1, 2); (2, 2) ] in
  let edge_lines =
    List.filteri (fun i _ -> (edge_mask lsr i) land 1 = 1) pairs
    |> List.map (fun (a, b) -> Line.of_multiset (Multiset.of_list [ a; b ]))
  in
  if node_lines = [] || edge_lines = [] then None
  else
    Some
      (Problem.make ~name:"rnd"
         ~alpha:(Alphabet.create [ "A"; "B"; "C" ])
         ~node:(Constr.make node_lines)
         ~edge:(Constr.make edge_lines))

let invariant_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  [
    QCheck.Test.make ~name:"serialize-roundtrip-random" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            (* Serialization drops labels that appear in no
               configuration, so compare modulo trimming. *)
            let p' = Serialize.of_string (Serialize.to_string p) in
            Iso.equal_up_to_renaming (Problem.trim p) p');
    QCheck.Test.make ~name:"drop-redundant-preserves-semantics" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let pruned = Simplify.drop_redundant_lines p in
            let set c =
              List.sort_uniq Multiset.compare (Constr.expand c)
            in
            List.equal Multiset.equal (set p.Problem.node)
              (set pruned.Problem.node)
            && List.equal Multiset.equal (set p.Problem.edge)
                 (set pruned.Problem.edge));
    QCheck.Test.make ~name:"line-contains-equals-expansion" ~count:100
      QCheck.(pair (int_range 1 30) (int_range 0 100))
      (fun (set_bits, pick) ->
        (* A random condensed line of arity 3 over 3 labels. *)
        let s1 = Labelset.of_bits (1 + (set_bits land 3)) in
        let s2 = Labelset.of_bits (1 + (set_bits lsr 2 land 3)) in
        let l = Line.make [ (s1, 1); (s2, 2) ] in
        (* A random multiset of the same arity. *)
        let m =
          Multiset.of_list
            [ pick mod 3; pick / 3 mod 3; pick / 9 mod 3 ]
        in
        let brute = ref false in
        Line.expand l (fun m' -> if Multiset.equal m m' then brute := true);
        Line.contains l m = !brute);
    QCheck.Test.make ~name:"edge-diagram-strength-semantics" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            (* a >= b iff substituting a for one b preserves membership
               for every allowed edge configuration. *)
            let d = Diagram.edge_diagram p in
            let configs = Constr.expand p.Problem.edge in
            List.for_all
              (fun a ->
                List.for_all
                  (fun b ->
                    let brute =
                      List.for_all
                        (fun c ->
                          (not (Multiset.mem b c))
                          || Constr.mem p.Problem.edge
                               (Multiset.replace_one ~remove:b ~add:a c))
                        configs
                    in
                    Diagram.geq d a b = brute)
                  [ 0; 1; 2 ])
              [ 0; 1; 2 ]);
  ]

(* ------------------------------------------------------------------ *)
(* Stricter parse/constructor grammar                                  *)
(* ------------------------------------------------------------------ *)

let test_parse_rejects_zero_count () =
  let fails f = match f () with exception Failure _ -> true | _ -> false in
  check_bool "line ^0" true (fails (fun () -> Parse.line alpha5 "M P O^0"));
  check_bool "bracket ^0" true (fails (fun () -> Parse.line alpha5 "[MP]^0 O"));
  check_bool "problem ^0" true
    (fails (fun () ->
         Parse.problem ~name:"p" ~node:"M^1\nP O^0" ~edge:"M [PO]\nO O"));
  (* The error message must name the offending construct. *)
  (match Parse.line alpha5 "M O^0" with
  | exception Failure msg ->
      check_bool "message mentions ^0" true
        (let needle = "^0" in
         let len = String.length needle in
         let rec scan i =
           i + len <= String.length msg
           && (String.sub msg i len = needle || scan (i + 1))
         in
         scan 0)
  | _ -> Alcotest.fail "expected parse failure");
  (* ^1 and omitted groups are still fine. *)
  check_bool "^1 accepted" true
    (Line.equal (Parse.line alpha5 "M^1 P") (Parse.line alpha5 "M P"))

let test_parse_rejects_nested_bracket_syntax () =
  let fails f = match f () with exception Failure _ -> true | _ -> false in
  check_bool "caret inside brackets" true
    (fails (fun () -> Parse.line alpha5 "[A^2] O O"));
  check_bool "open bracket inside brackets" true
    (fails (fun () -> Parse.line alpha5 "[[MP]O] X"));
  check_bool "caret inside brackets (problem)" true
    (fails (fun () ->
         Parse.problem ~name:"p" ~node:"[M^2] O" ~edge:"M O\nO O"));
  (* Space-separated multi-character names inside brackets still work. *)
  let alpha = Alphabet.create [ "lo"; "hi" ] in
  check_int "multi-char disjunction" 2
    (Labelset.cardinal (Line.support (Parse.line alpha "[lo hi] lo")))

let test_line_make_zero_count () =
  let invalid f = match f () with exception Invalid_argument _ -> true | _ -> false in
  check_bool "zero count raises" true
    (invalid (fun () -> Line.make [ (Labelset.singleton 0, 0) ]));
  check_bool "mixed zero count raises" true
    (invalid (fun () ->
         Line.make [ (Labelset.singleton 0, 2); (Labelset.singleton 1, 0) ]));
  check_bool "negative count raises" true
    (invalid (fun () -> Line.make [ (Labelset.singleton 0, -1) ]));
  (* Merging equal sets is still allowed and sums the counts. *)
  let l = Line.make [ (Labelset.singleton 0, 1); (Labelset.singleton 0, 2) ] in
  check_int "merged arity" 3 (Line.arity l)

(* ------------------------------------------------------------------ *)
(* Fixedpoint step counter and memo cache                              *)
(* ------------------------------------------------------------------ *)

let test_fixedpoint_counter_matches_steps () =
  let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
  Fixedpoint.clear_cache ();
  Fixedpoint.reset_stats ();
  (* The verdict's step index must equal the number of R̄∘R
     applications the driver actually performed. *)
  (match Fixedpoint.detect so with
  | Fixedpoint.Reaches_fixed_point (i, _) ->
      check_int "verdict index = applications" i
        Fixedpoint.stats.Fixedpoint.steps_applied
  | Fixedpoint.Fixed_point _ ->
      check_int "fixed point after one application" 1
        Fixedpoint.stats.Fixedpoint.steps_applied
  | Fixedpoint.No_fixed_point_found _ -> Alcotest.fail "SO must stabilize");
  let first_run = Fixedpoint.stats.Fixedpoint.steps_applied in
  let misses = Fixedpoint.stats.Fixedpoint.cache_misses in
  (* A second detection of the same problem replays entirely from the
     memo: same number of applications, zero additional misses. *)
  ignore (Fixedpoint.detect so);
  check_int "second run applies the same count" (2 * first_run)
    Fixedpoint.stats.Fixedpoint.steps_applied;
  check_int "no new cache misses" misses
    Fixedpoint.stats.Fixedpoint.cache_misses;
  check_bool "cache hits recorded" true
    (Fixedpoint.stats.Fixedpoint.cache_hits >= first_run);
  Fixedpoint.clear_cache ()

let test_fixedpoint_cache_isomorphic_input () =
  (* The memo is keyed up to renaming: a renamed copy of a cached
     problem must hit the cache. *)
  let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
  Fixedpoint.clear_cache ();
  ignore (Fixedpoint.detect so);
  Fixedpoint.reset_stats ();
  let renamed = Iso.apply_renaming so [ ("O", "Z"); ("I", "J") ] in
  ignore (Fixedpoint.detect renamed);
  check_int "renamed input misses nothing" 0
    Fixedpoint.stats.Fixedpoint.cache_misses;
  check_bool "renamed input hits" true
    (Fixedpoint.stats.Fixedpoint.cache_hits > 0);
  Fixedpoint.clear_cache ()

(* ------------------------------------------------------------------ *)
(* R: closed-set enumeration vs the seed's subset enumeration          *)
(* ------------------------------------------------------------------ *)

(* Reference implementation of the maximal-pair computation exactly as
   the engine originally did it: enumerate all 2^n - 1 non-empty label
   subsets S, collect the canonicalized closed pair (N(N(S)), N(S)).
   The production path enumerates only Galois-closed sets; both must
   produce identical pairs (and hence identical R output). *)
let reference_maximal_pairs (p : Problem.t) =
  let n = Problem.label_count p in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> assert false))
    (Constr.lines p.Problem.edge);
  let neighbors s =
    let acc = ref Labelset.empty in
    for b = 0 to n - 1 do
      if Labelset.for_all (fun a -> compat.(a).(b)) s then
        acc := Labelset.add b !acc
    done;
    !acc
  in
  let pairs = ref [] in
  List.iter
    (fun s ->
      let t = neighbors s in
      if not (Labelset.is_empty t) then begin
        let s' = neighbors t in
        let pair = if Labelset.compare s' t <= 0 then (s', t) else (t, s') in
        if not (List.exists (fun (a, b) ->
                    Labelset.equal a (fst pair) && Labelset.equal b (snd pair))
                  !pairs)
        then pairs := pair :: !pairs
      end)
    (Labelset.nonempty_subsets (Labelset.full n));
  List.sort
    (fun (a1, a2) (b1, b2) ->
      match Labelset.compare a1 b1 with 0 -> Labelset.compare a2 b2 | c -> c)
    !pairs

let engine_maximal_pairs (p : Problem.t) =
  let { Rounde.problem = p'; denotations } = Rounde.r p in
  List.map
    (fun line ->
      match Line.to_multiset line with
      | Some m -> (
          match Multiset.to_list m with
          | [ l1; l2 ] ->
              let s1 = denotations.(l1) and s2 = denotations.(l2) in
              if Labelset.compare s1 s2 <= 0 then (s1, s2) else (s2, s1)
          | _ -> Alcotest.fail "R edge line of arity <> 2")
      | None -> Alcotest.fail "non-concrete R edge line")
    (Constr.lines p'.Problem.edge)
  |> List.sort (fun (a1, a2) (b1, b2) ->
         match Labelset.compare a1 b1 with
         | 0 -> Labelset.compare a2 b2
         | c -> c)

let check_r_matches_reference p =
  let expected = reference_maximal_pairs p in
  let got = engine_maximal_pairs p in
  check_int
    (Printf.sprintf "pair count on %s" p.Problem.name)
    (List.length expected) (List.length got);
  List.iter2
    (fun (e1, e2) (g1, g2) ->
      check_bool
        (Printf.sprintf "pair on %s" p.Problem.name)
        true
        (Labelset.equal e1 g1 && Labelset.equal e2 g2))
    expected got

let test_r_reference_mis () = check_r_matches_reference mis3

let test_r_reference_family () =
  List.iter
    (fun (delta, a, x) ->
      let group (name, c) =
        if c = 0 then "" else Printf.sprintf " %s^%d" name c
      in
      let config groups = String.concat "" (List.map group groups) in
      let node =
        String.concat "\n"
          [
            config [ ("M", delta - x); ("X", x) ];
            config [ ("A", a); ("X", delta - a) ];
            config [ ("P", 1); ("O", delta - 1) ];
          ]
      in
      let edge = "M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]" in
      check_r_matches_reference (Parse.problem ~name:"pi" ~node ~edge))
    [ (3, 2, 0); (4, 3, 1); (5, 4, 2); (6, 2, 0) ]

let r_reference_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  [
    QCheck.Test.make ~name:"closed-set-pairs-equal-subset-pairs" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p -> (
            (* Degenerate problems can make R's node constraint empty;
               the constructor then raises, exactly as it did under
               subset enumeration — nothing to compare there. *)
            match engine_maximal_pairs p with
            | exception (Invalid_argument _ | Failure _) -> true
            | got ->
                let expected = reference_maximal_pairs p in
                List.length expected = List.length got
                && List.for_all2
                     (fun (e1, e2) (g1, g2) ->
                       Labelset.equal e1 g1 && Labelset.equal e2 g2)
                     expected got));
  ]

(* ------------------------------------------------------------------ *)
(* Order-ideal right-closed-set enumeration vs the subset filter       *)
(* ------------------------------------------------------------------ *)

(* Reference implementation exactly as the seed computed it: filter the
   2^n - 1 non-empty label subsets.  The production path enumerates the
   order ideals of the diagram's class condensation and must return the
   same list (both are sorted in increasing bitset order). *)
let reference_right_closed d n =
  List.filter (Diagram.is_right_closed d)
    (Labelset.nonempty_subsets (Labelset.full n))

let check_rc_matches_reference ~what d n =
  let expected = reference_right_closed d n in
  let got = Diagram.right_closed_sets d in
  check_int (what ^ ": count") (List.length expected) (List.length got);
  check_bool (what ^ ": sets") true (List.equal Labelset.equal expected got)

let family_problem (delta, a, x) =
  let group (name, c) = if c = 0 then "" else Printf.sprintf " %s^%d" name c in
  let config groups = String.concat "" (List.map group groups) in
  let node =
    String.concat "\n"
      [
        config [ ("M", delta - x); ("X", x) ];
        config [ ("A", a); ("X", delta - a) ];
        config [ ("P", 1); ("O", delta - 1) ];
      ]
  in
  Parse.problem ~name:"pi" ~node
    ~edge:"M [PAOX]\nO [MAOX]\nP [MX]\nA [MOX]\nX [MPAOX]"

let test_rc_reference_mis () =
  check_rc_matches_reference ~what:"edge diagram"
    (Diagram.edge_diagram mis3)
    (Problem.label_count mis3);
  let { Rounde.problem = p'; _ } = Rounde.r mis3 in
  check_rc_matches_reference ~what:"node diagram of R(MIS)"
    (Diagram.node_diagram p')
    (Problem.label_count p')

let test_rc_reference_family () =
  List.iter
    (fun params ->
      let p = family_problem params in
      check_rc_matches_reference ~what:"family edge" (Diagram.edge_diagram p)
        (Problem.label_count p);
      check_rc_matches_reference ~what:"family node" (Diagram.node_diagram p)
        (Problem.label_count p))
    [ (3, 2, 0); (4, 3, 1); (5, 4, 2); (6, 2, 0) ]

(* Δ = 2 problem whose node diagram is the chain l0 < l1 < … < l(n-1):
   the pair (i, j) is allowed iff i + j >= n - 1, so substituting a
   larger label preserves membership and the minimal partner n - 1 - j
   certifies strictness.  The chain has exactly n right-closed sets
   (the suffixes), so the order-ideal enumeration stays linear where
   the subset filter — and the seed's hard 20/22-label caps — blew
   up. *)
let chain_problem n =
  let name i = Printf.sprintf "l%d" i in
  let names = List.init n name in
  let all = String.concat " " names in
  let node =
    String.concat "\n"
      (List.init n (fun i ->
           (* A one-name bracket like "[l5]" would be scanned as the
              character labels "l" and "5" (round-eliminator
              convention: brackets without spaces are char lists), so
              emit singleton groups bare. *)
           match List.filteri (fun j _ -> i + j >= n - 1) names with
           | [ only ] -> Printf.sprintf "%s %s" (name i) only
           | partners ->
               Printf.sprintf "%s [%s]" (name i) (String.concat " " partners)))
  in
  Parse.problem
    ~name:(Printf.sprintf "chain%d" n)
    ~node
    ~edge:(Printf.sprintf "[%s] [%s]" all all)

let test_rc_reference_chain () =
  let n = 12 in
  let p = chain_problem n in
  let d = Diagram.node_diagram p in
  check_rc_matches_reference ~what:"chain node diagram" d n;
  (* ... and those sets are exactly the n suffixes. *)
  let l i = Alphabet.find p.Problem.alpha (Printf.sprintf "l%d" i) in
  let suffix m = Labelset.of_list (List.init (n - m) (fun k -> l (m + k))) in
  let expected = List.sort Labelset.compare (List.init n suffix) in
  let got = List.sort Labelset.compare (Diagram.right_closed_sets d) in
  check_bool "suffixes" true (List.equal Labelset.equal expected got)

let test_rc_limit_guard () =
  let d = Diagram.edge_diagram mis3 in
  (* MIS has exactly 5 right-closed sets. *)
  (match Diagram.right_closed_sets ~limit:4 d with
  | exception Budget.Budget_exceeded { limit; _ } ->
      check_int "overrun reports the limit" 4 (int_of_float limit)
  | _ -> Alcotest.fail "expected rc-budget overrun");
  check_int "exactly at the budget" 5
    (List.length (Diagram.right_closed_sets ~limit:5 d));
  (match Diagram.iter_right_closed ~limit:2 d (fun _ -> ()) with
  | exception Budget.Budget_exceeded _ -> ()
  | () -> Alcotest.fail "expected iterator budget overrun");
  (* The iterator supports early exit by raising from the callback. *)
  let seen = ref 0 in
  (match
     Diagram.iter_right_closed d (fun _ ->
         incr seen;
         if !seen = 3 then raise Exit)
   with
  | exception Exit -> ()
  | () -> Alcotest.fail "expected early exit");
  check_int "stopped early" 3 !seen

let rc_reference_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  [
    QCheck.Test.make ~name:"order-ideals-equal-subset-filter" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let n = Problem.label_count p in
            let check_d d =
              List.equal Labelset.equal
                (reference_right_closed d n)
                (Diagram.right_closed_sets d)
            in
            check_d (Diagram.edge_diagram p)
            && check_d (Diagram.node_diagram p));
  ]

(* ------------------------------------------------------------------ *)
(* Bron–Kerbosch maximal cliques vs the subset filter                  *)
(* ------------------------------------------------------------------ *)

let compat_of (p : Problem.t) =
  let n = Problem.label_count p in
  let compat = Array.make_matrix n n false in
  List.iter
    (fun line ->
      Line.expand line (fun m ->
          match Multiset.to_list m with
          | [ a; b ] ->
              compat.(a).(b) <- true;
              compat.(b).(a) <- true
          | _ -> assert false))
    (Constr.lines p.Problem.edge);
  (compat, n)

(* Reference: filter the 2^n subsets for self-compatible cliques and
   keep the ⊆-maximal ones — the seed's semantics without its silent
   exponential sweep. *)
let reference_maximal_cliques compat n =
  let self = ref Labelset.empty in
  for v = 0 to n - 1 do
    if compat.(v).(v) then self := Labelset.add v !self
  done;
  let clique s =
    Labelset.subset s !self
    && Labelset.for_all
         (fun a -> Labelset.for_all (fun b -> compat.(a).(b)) s)
         s
  in
  let cliques =
    List.filter clique (Labelset.nonempty_subsets (Labelset.full n))
  in
  List.filter
    (fun c -> not (List.exists (fun c' -> Labelset.strict_subset c c') cliques))
    cliques
  |> List.sort Labelset.compare

let engine_maximal_cliques ?max_expansions compat n =
  let acc = ref [] in
  Zeroround.iter_maximal_cliques ?max_expansions compat n (fun c ->
      acc := c :: !acc);
  List.sort Labelset.compare !acc

let check_cliques_match (p : Problem.t) =
  let compat, n = compat_of p in
  let expected = reference_maximal_cliques compat n in
  let got = engine_maximal_cliques compat n in
  check_int (p.Problem.name ^ ": clique count") (List.length expected)
    (List.length got);
  check_bool (p.Problem.name ^ ": cliques") true
    (List.equal Labelset.equal expected got)

let test_cliques_mis () = check_cliques_match mis3

let test_cliques_family () =
  List.iter
    (fun params -> check_cliques_match (family_problem params))
    [ (3, 2, 0); (4, 3, 1); (5, 4, 2) ]

let test_cliques_edge_cases () =
  (* No self-compatible label at all: no cliques on either side. *)
  check_cliques_match (Parse.problem ~name:"halves" ~node:"L R" ~edge:"L R");
  (* Complete graph: a single maximal clique. *)
  let k4 = Parse.problem ~name:"k4" ~node:"A B C D" ~edge:"[ABCD] [ABCD]" in
  check_cliques_match k4;
  let compat, n = compat_of k4 in
  check_int "one clique" 1 (List.length (engine_maximal_cliques compat n))

let test_clique_guard () =
  let compat, n = compat_of mis3 in
  match Zeroround.iter_maximal_cliques ~max_expansions:0 compat n (fun _ -> ())
  with
  | exception Budget.Budget_exceeded _ -> ()
  | () -> Alcotest.fail "expected expansion-budget overrun"

let test_zeroround_stats () =
  Zeroround.reset_stats ();
  check_bool "mis not solvable" true
    (Zeroround.solvable_arbitrary_ports mis3 = None);
  check_int "one call" 1 Zeroround.stats.Zeroround.clique_calls;
  check_bool "cliques counted" true
    (Zeroround.stats.Zeroround.maximal_cliques >= 1);
  check_bool "expansions counted" true
    (Zeroround.stats.Zeroround.bk_expansions >= 1);
  check_bool "time accumulated" true
    (Zeroround.stats.Zeroround.clique_time_s >= 0.)

let clique_reference_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  [
    QCheck.Test.make ~name:"bron-kerbosch-equals-subset-filter" ~count:200 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let compat, n = compat_of p in
            List.equal Labelset.equal
              (reference_maximal_cliques compat n)
              (engine_maximal_cliques compat n));
    QCheck.Test.make ~name:"arbitrary-ports-equals-bruteforce" ~count:200 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p -> (
            let compat, _ = compat_of p in
            let pool_ok m =
              let ls = Multiset.to_list m in
              List.for_all
                (fun a -> List.for_all (fun b -> compat.(a).(b)) ls)
                ls
            in
            let brute =
              List.exists pool_ok (Constr.expand p.Problem.node)
            in
            match Zeroround.solvable_arbitrary_ports p with
            | None -> not brute
            | Some w -> brute && Constr.mem p.Problem.node w && pool_ok w));
  ]

(* ------------------------------------------------------------------ *)
(* Rbar old-vs-new equivalence                                         *)
(* ------------------------------------------------------------------ *)

(* Independent reimplementation of R̄ following the seed: right-closed
   sets by subset filter, candidate boxes by a brute multiset sweep,
   maximality by pairwise transport domination, edge pairs by choice
   search.  Returns (boxes, edge pairs) in a normalized order. *)
let reference_rbar (p' : Problem.t) =
  let n = Problem.label_count p' in
  let delta = Constr.arity p'.Problem.node in
  let d = Diagram.node_diagram p' in
  let rc = reference_right_closed d n in
  let valid = ref [] in
  Util.multisets rc delta (fun sets ->
      let ok =
        let rec go acc = function
          | [] -> Constr.mem p'.Problem.node (Multiset.of_list acc)
          | s :: rest -> Labelset.for_all (fun l -> go (l :: acc) rest) s
        in
        go [] sets
      in
      if ok then valid := sets :: !valid);
  let dominates a b =
    let a = Array.of_list a and b = Array.of_list b in
    Util.transport_feasible
      ~supply:(Array.map (fun _ -> 1) b)
      ~demand:(Array.map (fun _ -> 1) a)
      ~allowed:(fun i j -> Labelset.subset b.(i) a.(j))
  in
  let maximal =
    List.filter
      (fun b -> not (List.exists (fun a -> a != b && dominates a b) !valid))
      !valid
  in
  let norm_box b = List.sort Labelset.compare b in
  let boxes =
    List.sort (List.compare Labelset.compare) (List.map norm_box maximal)
  in
  let compat, _ = compat_of p' in
  let used = List.sort_uniq Labelset.compare (List.concat boxes) in
  let pair_ok s t =
    Labelset.exists (fun a -> Labelset.exists (fun b -> compat.(a).(b)) t) s
  in
  let pairs = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun t ->
          if Labelset.compare s t <= 0 && pair_ok s t then
            pairs := (s, t) :: !pairs)
        used)
    used;
  let cmp (a1, a2) (b1, b2) =
    match Labelset.compare a1 b1 with 0 -> Labelset.compare a2 b2 | c -> c
  in
  (boxes, List.sort cmp !pairs)

let engine_rbar (p' : Problem.t) =
  let { Rounde.problem = p''; denotations } = Rounde.rbar p' in
  let boxes =
    List.map
      (fun line ->
        match Line.to_multiset line with
        | Some m ->
            List.sort Labelset.compare
              (List.map (fun l -> denotations.(l)) (Multiset.to_list m))
        | None -> failwith "non-concrete rbar node line")
      (Constr.lines p''.Problem.node)
    |> List.sort (List.compare Labelset.compare)
  in
  let cmp (a1, a2) (b1, b2) =
    match Labelset.compare a1 b1 with 0 -> Labelset.compare a2 b2 | c -> c
  in
  let pairs =
    List.map
      (fun m ->
        match Multiset.to_list m with
        | [ a; b ] ->
            let s = denotations.(a) and t = denotations.(b) in
            if Labelset.compare s t <= 0 then (s, t) else (t, s)
        | _ -> failwith "rbar edge line of arity <> 2")
      (Constr.expand p''.Problem.edge)
    |> List.sort_uniq cmp
  in
  (boxes, pairs)

let check_rbar_matches_reference (p : Problem.t) =
  let { Rounde.problem = p'; _ } = Rounde.r p in
  let exp_boxes, exp_pairs = reference_rbar p' in
  let got_boxes, got_pairs = engine_rbar p' in
  check_int
    (p.Problem.name ^ ": box count")
    (List.length exp_boxes) (List.length got_boxes);
  check_bool (p.Problem.name ^ ": boxes") true
    (List.equal (List.equal Labelset.equal) exp_boxes got_boxes);
  check_int
    (p.Problem.name ^ ": edge pair count")
    (List.length exp_pairs) (List.length got_pairs);
  check_bool (p.Problem.name ^ ": edge pairs") true
    (List.equal
       (fun (a1, a2) (b1, b2) ->
         Labelset.equal a1 b1 && Labelset.equal a2 b2)
       exp_pairs got_pairs)

let test_rbar_reference_mis () = check_rbar_matches_reference mis3

let test_rbar_reference_so () =
  check_rbar_matches_reference
    (Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I")

let test_rbar_reference_coloring () =
  check_rbar_matches_reference
    (Parse.problem ~name:"3col" ~node:"A A\nB B\nC C" ~edge:"A [BC]\nB C")

let rbar_reference_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  [
    QCheck.Test.make ~name:"rbar-equals-seed-reference" ~count:30 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p -> (
            match Rounde.r p with
            | exception (Budget.Budget_exceeded _ | Failure _) -> true
            | { Rounde.problem = p'; _ } ->
                (* The brute-force reference is exponential in the label
                   count of R(Π); stay where it is cheap. *)
                if Problem.label_count p' > 5 then true
                else
                  let exp_boxes, exp_pairs = reference_rbar p' in
                  (match engine_rbar p' with
                  | exception Budget.Budget_exceeded _ -> true
                  | exception Failure _ ->
                      (* The engine refuses degenerate outputs (empty
                         node or edge constraint); the reference must
                         agree the output really is degenerate. *)
                      exp_boxes = [] || exp_pairs = []
                  | got_boxes, got_pairs ->
                      List.equal (List.equal Labelset.equal) exp_boxes
                        got_boxes
                      && List.equal
                           (fun (a1, a2) (b1, b2) ->
                             Labelset.equal a1 b1 && Labelset.equal a2 b2)
                           exp_pairs got_pairs)));
  ]

let test_rbar_beyond_old_cap () =
  (* 24 labels: the seed's rbar refused anything over 20 labels and its
     right_closed_sets anything over 22.  The chain's node diagram has
     only 24 right-closed sets (the suffixes), so the lattice-native
     pipeline handles it instantly; the maximal boxes are exactly the
     12 antidiagonal suffix pairs {S_a, S_(23-a)}. *)
  let n = 24 in
  let p = chain_problem n in
  let l i = Alphabet.find p.Problem.alpha (Printf.sprintf "l%d" i) in
  let suffix m = Labelset.of_list (List.init (n - m) (fun k -> l (m + k))) in
  Rounde.reset_stats ();
  (* [~zdd:false] pins the explicit path: the dominance-counter assert
     below is about the explicit scan, which the symbolic rung replaces
     wholesale (its counters stay 0 by design — test/zdd covers that
     rung's own counters). *)
  let { Rounde.problem = p''; denotations } = Rounde.rbar ~zdd:false p in
  check_int "rc sets counted" n Rounde.stats.Rounde.rc_sets;
  check_int "all suffixes used" n (Problem.label_count p'');
  let pos_of s =
    let rec go m =
      if m = n then Alcotest.fail "denotation is not a suffix"
      else if Labelset.equal s (suffix m) then m
      else go (m + 1)
    in
    go 0
  in
  let boxes = Constr.lines p''.Problem.node in
  check_int "antidiagonal boxes" (n / 2) (List.length boxes);
  List.iter
    (fun line ->
      match Line.to_multiset line with
      | Some m -> (
          match Multiset.to_list m with
          | [ a; b ] ->
              check_int "minima sum to n-1" (n - 1)
                (pos_of denotations.(a) + pos_of denotations.(b))
          | _ -> Alcotest.fail "box arity")
      | None -> Alcotest.fail "non-concrete box")
    boxes;
  check_bool "dominance pruning exercised" true
    (Rounde.stats.Rounde.box_dom_checks > 0
    && Rounde.stats.Rounde.box_dom_cheap_skips > 0)

(* ------------------------------------------------------------------ *)
(* Simplify.drop_redundant_lines: canonical representatives            *)
(* ------------------------------------------------------------------ *)

let test_drop_redundant_cover_chain () =
  (* A strict cover chain A^3 ⋖ [AB]^3 ⋖ [ABC]^3 plus a mixed line
     covered by the top: exactly the maximal line survives.  Cover
     cycles between distinct lines cannot occur — Line.covers is
     antisymmetric on canonical lines (qcheck property below) — so
     every cover-equivalence class is a singleton and "one canonical
     representative per class" means precisely this. *)
  let p =
    Parse.problem ~name:"chain"
      ~node:"A A A\n[AB] [AB] [AB]\n[ABC] [ABC] [ABC]\nA [AB] [ABC]"
      ~edge:"[ABC] [ABC]"
  in
  let pruned = Simplify.drop_redundant_lines p in
  (match Constr.lines pruned.Problem.node with
  | [ line ] ->
      check_bool "top of the chain survives" true
        (Line.equal line (Parse.line p.Problem.alpha "[ABC] [ABC] [ABC]"))
  | lines -> Alcotest.failf "expected 1 node line, got %d" (List.length lines));
  check_int "edge untouched" 1 (List.length (Constr.lines pruned.Problem.edge))

let simplify_prune_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  let line_gen =
    QCheck.(
      map
        (fun (b1, b2, c) ->
          Line.make [ (Labelset.of_bits b1, 1); (Labelset.of_bits b2, c) ])
        (triple (int_range 1 7) (int_range 1 7) (int_range 1 3)))
  in
  [
    QCheck.Test.make ~name:"pruned-lines-form-a-cover-antichain" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let antichain c =
              let lines = Constr.lines c in
              List.for_all
                (fun a ->
                  List.for_all
                    (fun b -> Line.equal a b || not (Line.covers a b))
                    lines)
                lines
            in
            let pruned = Simplify.drop_redundant_lines p in
            antichain pruned.Problem.node && antichain pruned.Problem.edge);
    QCheck.Test.make ~name:"dropped-lines-covered-by-kept-ones" ~count:100 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let pruned = Simplify.drop_redundant_lines p in
            let covered c c' =
              let kept = Constr.lines c' in
              List.for_all
                (fun line -> List.exists (fun k -> Line.covers k line) kept)
                (Constr.lines c)
            in
            covered p.Problem.node pruned.Problem.node
            && covered p.Problem.edge pruned.Problem.edge);
    QCheck.Test.make ~name:"line-covers-antisymmetric-on-canonical-lines"
      ~count:500 (QCheck.pair line_gen line_gen)
      (fun (a, b) ->
        (not (Line.covers a b && Line.covers b a)) || Line.equal a b);
  ]

(* ------------------------------------------------------------------ *)
(* Fixedpoint timing split                                             *)
(* ------------------------------------------------------------------ *)

let test_fixedpoint_normalize_timer () =
  Fixedpoint.clear_cache ();
  Fixedpoint.reset_stats ();
  ignore
    (Fixedpoint.detect (Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I"));
  let s = Fixedpoint.stats in
  check_bool "normalize share within step time" true
    (s.Fixedpoint.normalize_time_s >= 0.
    && s.Fixedpoint.normalize_time_s <= s.Fixedpoint.step_time_s +. 1e-9);
  Fixedpoint.clear_cache ()

(* ------------------------------------------------------------------ *)
(* Fixedpoint memo under hash collisions                               *)
(* ------------------------------------------------------------------ *)

(* Two non-isomorphic 5-label problems engineered to share an
   [Iso.invariant_hash]: [Hashtbl.hash]'s bounded traversal stops
   before it reaches the part of the sorted signature list where the
   edge constraints differ (one self-loop line vs. a wildcard line).
   Both survive [Simplify.normalize] still colliding, which is what
   the memo-cache lookup keys on.  Five labels keeps the bijection
   search in [Iso.equal_up_to_renaming] trivial (≤ 120 candidates), so
   proving the pair non-isomorphic stays fast. *)
let collision_pair () =
  let mk name self_loop =
    let k = 5 in
    let names = List.init k (fun i -> Printf.sprintf "l%d" i) in
    let node =
      String.concat "\n"
        (List.mapi
           (fun i n ->
             Printf.sprintf "%s %s" n (List.nth names ((i + 1) mod k)))
           names)
    in
    let edge =
      String.concat "\n"
        (List.mapi
           (fun i n ->
             if self_loop && i = 0 then Printf.sprintf "%s %s" n n
             else Printf.sprintf "%s [%s]" n (String.concat " " names))
           names)
    in
    Parse.problem ~name ~node ~edge
  in
  (mk "collA" false, mk "collB" true)

let test_collision_pair_is_engineered () =
  let a, b = collision_pair () in
  check_int "same invariant hash" (Iso.invariant_hash a) (Iso.invariant_hash b);
  check_bool "but not isomorphic" false (Iso.equal_up_to_renaming a b);
  (* The memo keys on the *normalized* problems — the collision must
     survive normalization for the regression test to mean anything. *)
  let na = Simplify.normalize a and nb = Simplify.normalize b in
  check_int "normalized: same hash" (Iso.invariant_hash na)
    (Iso.invariant_hash nb);
  check_bool "normalized: not isomorphic" false (Iso.equal_up_to_renaming na nb)

(* Regression: a hash-trusting cache would serve collA's step result
   for collB (1 hit / 1 miss).  The sound cache confirms candidates
   with [Iso.equal_up_to_renaming], so both problems miss, and the
   rejected candidate is counted in [hash_conflicts]. *)
let test_fixedpoint_cache_hash_collision () =
  Fixedpoint.clear_cache ();
  Fixedpoint.reset_stats ();
  let a, b = collision_pair () in
  ignore (Fixedpoint.detect ~max_steps:1 a);
  ignore (Fixedpoint.detect ~max_steps:1 b);
  let s = Fixedpoint.stats in
  check_int "both colliding problems computed fresh" 2
    s.Fixedpoint.cache_misses;
  check_int "no false cache hit across the collision" 0
    s.Fixedpoint.cache_hits;
  check_bool "rejected in-bucket candidate counted" true
    (s.Fixedpoint.hash_conflicts >= 1);
  (* Replays of the exact same inputs do hit, despite sharing the
     bucket — the iso confirmation finds the right entry. *)
  ignore (Fixedpoint.detect ~max_steps:1 a);
  ignore (Fixedpoint.detect ~max_steps:1 b);
  check_int "identical replays served from cache" 2
    Fixedpoint.stats.Fixedpoint.cache_hits;
  check_int "no extra misses on replay" 2
    Fixedpoint.stats.Fixedpoint.cache_misses;
  Fixedpoint.clear_cache ()

(* ------------------------------------------------------------------ *)
(* Parctl: RELIM_DOMAINS parsing and the once-per-process warning      *)
(* ------------------------------------------------------------------ *)

let test_parctl_parse_env () =
  let check_parsed msg exp got =
    check_bool msg true (exp = got)
  in
  check_parsed "absent" Parctl.Unset (Parctl.parse_env None);
  check_parsed "plain count" (Parctl.Domains 4) (Parctl.parse_env (Some "4"));
  check_parsed "whitespace tolerated" (Parctl.Domains 8)
    (Parctl.parse_env (Some "  8 "));
  check_parsed "zero is malformed" (Parctl.Malformed "0")
    (Parctl.parse_env (Some "0"));
  check_parsed "negative is malformed" (Parctl.Malformed "-3")
    (Parctl.parse_env (Some "-3"));
  check_parsed "non-integer is malformed" (Parctl.Malformed "many")
    (Parctl.parse_env (Some "many"));
  check_parsed "empty is malformed" (Parctl.Malformed "")
    (Parctl.parse_env (Some ""))

(* Both paths of [domains_from_env]: a malformed value falls back to 1
   domain and warns exactly once per process (not once per read); a
   valid value is honoured silently. *)
let test_parctl_warns_once () =
  let original = Sys.getenv_opt Parctl.env_var in
  let saved_hook = !Parctl.warn_hook in
  let captured = ref [] in
  Parctl.warn_hook := (fun msg -> captured := msg :: !captured);
  Fun.protect
    ~finally:(fun () ->
      Parctl.warn_hook := saved_hook;
      (* [putenv] cannot unset; restore the original value, or a
         well-formed "1" (behaviourally identical to unset). *)
      Unix.putenv Parctl.env_var (Option.value original ~default:"1"))
  @@ fun () ->
  (* Malformed path. *)
  Parctl.reset_warned ();
  Unix.putenv Parctl.env_var "banana";
  check_int "malformed falls back to 1 domain" 1 (Parctl.domains_from_env ());
  check_int "second read also 1" 1 (Parctl.domains_from_env ());
  check_int "exactly one warning across both reads" 1 (List.length !captured);
  let msg = List.hd !captured in
  let contains sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    n = 0 || go 0
  in
  check_bool "warning names the variable" true (contains Parctl.env_var msg);
  check_bool "warning quotes the bad value" true (contains "banana" msg);
  (* Valid path: honoured, and never warns. *)
  Parctl.reset_warned ();
  captured := [];
  Unix.putenv Parctl.env_var "3";
  check_int "valid count honoured" 3 (Parctl.domains_from_env ());
  check_int "no warning for a valid value" 0 (List.length !captured)

(* ------------------------------------------------------------------ *)
(* Pretty-printer / parser round trips                                 *)
(* ------------------------------------------------------------------ *)

let roundtrip_qcheck =
  [
    QCheck.Test.make ~name:"line-pp-parse-roundtrip" ~count:200
      QCheck.(triple (int_range 1 31) (int_range 1 31) (int_range 1 4))
      (fun (b1, b2, c) ->
        (* Random condensed line over the 5-label alphabet. *)
        let l =
          Line.make [ (Labelset.of_bits b1, 1); (Labelset.of_bits b2, c) ]
        in
        Line.equal l (Parse.line alpha5 (Line.to_string alpha5 l)));
    QCheck.Test.make ~name:"problem-serialize-parse-roundtrip" ~count:100
      QCheck.(pair (int_range 1 1023) (int_range 1 63))
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let p' = Serialize.of_string (Serialize.to_string p) in
            Iso.equal_up_to_renaming (Problem.trim p) p');
    QCheck.Test.make ~name:"stepped-problem-roundtrip" ~count:20
      QCheck.(int_range 2 4)
      (fun delta ->
        (* Speedup outputs exercise multi-character set-labels. *)
        let node =
          String.concat "\n"
            [ Printf.sprintf "M^%d" delta; "P O" ^ if delta > 2 then Printf.sprintf " O^%d" (delta - 2) else "" ]
        in
        let p = Parse.problem ~name:"mis" ~node ~edge:"M [PO]\nO O" in
        let { Rounde.problem = stepped; _ } = Rounde.step p in
        let p' = Serialize.of_string (Serialize.to_string stepped) in
        Iso.equal_up_to_renaming (Problem.trim stepped) p');
  ]

(* Multiset insertion/removal against a sorted-list reference. *)
let multiset_ref_qcheck =
  let gen = QCheck.(pair (small_list (int_bound 6)) (int_bound 6)) in
  [
    QCheck.Test.make ~name:"add-matches-sorted-list" ~count:200 gen
      (fun (ls, x) ->
        Multiset.to_list (Multiset.add x (Multiset.of_list ls))
        = List.sort compare (x :: ls));
    QCheck.Test.make ~name:"remove-matches-sorted-list" ~count:200 gen
      (fun (ls, x) ->
        let m = Multiset.of_list ls in
        let rec remove_first = function
          | [] -> []
          | y :: rest -> if y = x then rest else y :: remove_first rest
        in
        if List.mem x ls then
          Multiset.to_list (Multiset.remove_one x m)
          = List.sort compare (remove_first ls)
        else
          match Multiset.remove_one x m with
          | exception Not_found -> true
          | _ -> false);
  ]

(* ------------------------------------------------------------------ *)
(* The domain pool and the engine's determinism across domain counts   *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let pool = Parallel.Pool.create ~domains:4 in
  let arr = Array.init 1000 Fun.id in
  List.iter
    (fun chunk ->
      let doubled = Parallel.Pool.map ~chunk pool (fun x -> 2 * x) arr in
      Alcotest.(check (array int))
        (Printf.sprintf "map preserves order (chunk=%d)" chunk)
        (Array.map (fun x -> 2 * x) arr)
        doubled;
      let odd_squares =
        Parallel.Pool.filter_mapi ~chunk pool
          (fun i x -> if i land 1 = 1 then Some (x * x) else None)
          arr
      in
      Alcotest.(check (list int))
        (Printf.sprintf "filter_mapi preserves order (chunk=%d)" chunk)
        (List.init 500 (fun k ->
             let i = (2 * k) + 1 in
             i * i))
        odd_squares)
    [ 1; 7; 64; 2048 ];
  Parallel.Pool.shutdown pool

let test_pool_exception () =
  let pool = Parallel.Pool.create ~domains:4 in
  (match
     Parallel.Pool.map pool
       (fun x -> if x = 37 then failwith "boom" else x)
       (Array.init 100 Fun.id)
   with
  | _ -> Alcotest.fail "expected the body's Failure to propagate"
  | exception Failure msg -> check Alcotest.string "failure message" "boom" msg);
  (* A failed job must not wedge the pool. *)
  let arr = Array.init 50 Fun.id in
  Alcotest.(check (array int))
    "pool reusable after a failure" arr
    (Parallel.Pool.map pool Fun.id arr);
  Parallel.Pool.shutdown pool;
  (* A stopped pool degrades to the sequential path. *)
  Alcotest.(check (array int))
    "stopped pool runs sequentially" arr
    (Parallel.Pool.map pool Fun.id arr)

let test_pool_run_merge () =
  let pool = Parallel.Pool.create ~domains:3 in
  let n = 1234 in
  let total = ref 0 in
  Parallel.Pool.run ~chunk:5 pool ~n
    ~init:(fun () -> ref 0)
    ~body:(fun acc i -> acc := !acc + i)
    ~merge:(fun acc -> total := !total + !acc);
  check_int "merged sum is exact" (n * (n - 1) / 2) !total;
  Parallel.Pool.run Parallel.Pool.sequential ~n:0
    ~init:(fun () -> ())
    ~body:(fun () _ -> Alcotest.fail "no items to visit")
    ~merge:ignore;
  Parallel.Pool.shutdown pool

(* The headline guarantee: problem, denotations, stats counters and
   budget verdicts of the parallel hot paths are identical for every
   domain count.  Wall times and [transport_cache_hits] (hits in
   per-worker memo tables) are the documented exceptions, so they stay
   out of the comparison. *)
let parallel_determinism_qcheck =
  let gen = QCheck.(pair (int_range 1 1023) (int_range 1 63)) in
  let rounde_counters () =
    let s = Rounde.stats in
    [
      s.Rounde.r_calls; s.Rounde.closures_visited; s.Rounde.closure_joins;
      s.Rounde.closure_revisits; s.Rounde.rbar_calls; s.Rounde.rc_sets;
      s.Rounde.boxes_emitted; s.Rounde.boxes_pruned; s.Rounde.box_dom_checks;
      s.Rounde.box_dom_cheap_skips; s.Rounde.box_transport_calls;
    ]
  in
  [
    QCheck.Test.make ~name:"step-identical-across-domain-counts" ~count:40 gen
      (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let run pool =
              Rounde.reset_stats ();
              match Rounde.step ~pool p with
              | { Rounde.problem; denotations } ->
                  Ok
                    ( Serialize.to_string problem,
                      Array.to_list denotations,
                      rounde_counters () )
              | exception Budget.Budget_exceeded { budget; limit } ->
                  Error (Budget.message ~budget ~limit)
              | exception Failure msg -> Error msg
            in
            let pool4 = Parallel.Pool.create ~domains:4 in
            let r1 = run Parallel.Pool.sequential in
            let r4 = run pool4 in
            Parallel.Pool.shutdown pool4;
            (match (r1, r4) with
            | Ok (s1, d1, c1), Ok (s4, d4, c4) ->
                String.equal s1 s4 && List.equal Labelset.equal d1 d4 && c1 = c4
            | Error m1, Error m4 -> String.equal m1 m4
            | Ok _, Error _ | Error _, Ok _ -> false));
    QCheck.Test.make ~name:"zeroround-identical-across-domain-counts" ~count:60
      gen (fun masks ->
        match random_problem masks with
        | None -> true
        | Some p ->
            let run pool =
              Zeroround.reset_stats ();
              let witness = Zeroround.solvable_arbitrary_ports ~pool p in
              let s = Zeroround.stats in
              ( Option.map Multiset.to_list witness,
                [
                  s.Zeroround.clique_calls; s.Zeroround.maximal_cliques;
                  s.Zeroround.bk_expansions;
                ] )
            in
            let pool4 = Parallel.Pool.create ~domains:4 in
            let r1 = run Parallel.Pool.sequential in
            let r4 = run pool4 in
            Parallel.Pool.shutdown pool4;
            r1 = r4);
  ]

let extra_suites =
  [
    ( "parallel-pool",
      [
        Alcotest.test_case "map/filter_mapi order" `Quick test_pool_map_order;
        Alcotest.test_case "exception propagation" `Quick test_pool_exception;
        Alcotest.test_case "run merge exactness" `Quick test_pool_run_merge;
      ] );
    qsuite "parallel-determinism-props" parallel_determinism_qcheck;
    ( "simplify",
      [
        Alcotest.test_case "merge" `Quick test_simplify_merge;
        Alcotest.test_case "soundness" `Quick test_merge_soundness;
        Alcotest.test_case "equivalents" `Quick test_merge_equivalent;
        Alcotest.test_case "redundant lines" `Quick test_drop_redundant;
        Alcotest.test_case "cover chain" `Quick test_drop_redundant_cover_chain;
      ] );
    ( "serialize",
      [
        Alcotest.test_case "roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "errors" `Quick test_serialize_errors;
      ] );
    ( "fixedpoint",
      [
        Alcotest.test_case "sinkless orientation" `Quick test_fixedpoint_so;
        Alcotest.test_case "trivial" `Quick test_fixedpoint_trivial;
        Alcotest.test_case "counter = applications" `Quick
          test_fixedpoint_counter_matches_steps;
        Alcotest.test_case "cache up to renaming" `Quick
          test_fixedpoint_cache_isomorphic_input;
        Alcotest.test_case "normalize timer" `Quick
          test_fixedpoint_normalize_timer;
        Alcotest.test_case "engineered hash collision pair" `Quick
          test_collision_pair_is_engineered;
        Alcotest.test_case "cache sound under hash collision" `Quick
          test_fixedpoint_cache_hash_collision;
      ] );
    ( "parctl",
      [
        Alcotest.test_case "parse_env classification" `Quick
          test_parctl_parse_env;
        Alcotest.test_case "malformed warns exactly once" `Quick
          test_parctl_warns_once;
      ] );
    ( "parse-strict",
      [
        Alcotest.test_case "zero counts rejected" `Quick
          test_parse_rejects_zero_count;
        Alcotest.test_case "bracket syntax rejected" `Quick
          test_parse_rejects_nested_bracket_syntax;
        Alcotest.test_case "Line.make zero count" `Quick
          test_line_make_zero_count;
      ] );
    ( "r-equivalence",
      [
        Alcotest.test_case "MIS (Delta=3)" `Quick test_r_reference_mis;
        Alcotest.test_case "Pi family" `Quick test_r_reference_family;
      ] );
    qsuite "r-equivalence-props" r_reference_qcheck;
    ( "rc-equivalence",
      [
        Alcotest.test_case "MIS diagrams" `Quick test_rc_reference_mis;
        Alcotest.test_case "Pi family diagrams" `Quick test_rc_reference_family;
        Alcotest.test_case "12-label chain" `Quick test_rc_reference_chain;
        Alcotest.test_case "budget and early exit" `Quick test_rc_limit_guard;
      ] );
    qsuite "rc-equivalence-props" rc_reference_qcheck;
    ( "clique-equivalence",
      [
        Alcotest.test_case "MIS" `Quick test_cliques_mis;
        Alcotest.test_case "Pi family" `Quick test_cliques_family;
        Alcotest.test_case "edge cases" `Quick test_cliques_edge_cases;
        Alcotest.test_case "expansion budget" `Quick test_clique_guard;
        Alcotest.test_case "stats counters" `Quick test_zeroround_stats;
      ] );
    qsuite "clique-equivalence-props" clique_reference_qcheck;
    ( "rbar-equivalence",
      [
        Alcotest.test_case "MIS" `Quick test_rbar_reference_mis;
        Alcotest.test_case "sinkless orientation" `Quick test_rbar_reference_so;
        Alcotest.test_case "3-coloring" `Quick test_rbar_reference_coloring;
        Alcotest.test_case "24-label chain (beyond seed caps)" `Quick
          test_rbar_beyond_old_cap;
      ] );
    qsuite "rbar-equivalence-props" rbar_reference_qcheck;
    qsuite "simplify-prune-props" simplify_prune_qcheck;
    qsuite "roundtrip-props" roundtrip_qcheck;
    qsuite "multiset-ref-props" multiset_ref_qcheck;
    ( "definitions",
      [
        Alcotest.test_case "R on MIS" `Quick test_r_definition_mis;
        Alcotest.test_case "R on the family" `Quick test_r_definition_family;
        Alcotest.test_case "Rbar extensional" `Quick test_rbar_definition;
      ] );
    ( "theorem3-props",
      List.map (Qseed.to_alcotest) theorem3_qcheck );
    ( "transport-props",
      List.map (Qseed.to_alcotest) transport_qcheck );
    ( "invariants",
      List.map (Qseed.to_alcotest) invariant_qcheck );
    ( "upperbound",
      [
        Alcotest.test_case "trivial is 0-round" `Quick (fun () ->
            let triv = Parse.problem ~name:"t" ~node:"A A A" ~edge:"A A" in
            match Upperbound.search triv with
            | Upperbound.Solvable_in 0 -> ()
            | Upperbound.Solvable_in k ->
                Alcotest.failf "expected 0 steps, got %d" k
            | Upperbound.Unknown_after _ -> Alcotest.fail "must be solvable");
        Alcotest.test_case "SO stays unsolvable" `Quick (fun () ->
            let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
            match Upperbound.search ~max_steps:3 so with
            | Upperbound.Unknown_after _ -> ()
            | Upperbound.Solvable_in k ->
                Alcotest.failf "SO cannot be %d-round solvable" k);
        Alcotest.test_case "consistency with the 0-round decider" `Quick
          (fun () ->
            (* Whenever the search answers Solvable_in k with k >= 1,
               re-deriving the k-step image must confirm it. *)
            let p =
              Parse.problem ~name:"p" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O"
            in
            match Upperbound.search ~max_steps:2 p with
            | Upperbound.Solvable_in k ->
                let rec image q i =
                  if i = 0 then q
                  else image (Simplify.normalize (Rounde.step q).Rounde.problem) (i - 1)
                in
                check_bool "image solvable" true
                  (Zeroround.solvable_arbitrary_ports (image p k) <> None)
            | Upperbound.Unknown_after _ -> ());
        Alcotest.test_case "max_steps clamps the search" `Quick (fun () ->
            (* SO is never 0-round solvable, so the search must stop
               exactly at the budget — including a budget of 0, which
               forbids any speedup step. *)
            let so = Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I" in
            (match Upperbound.search ~max_steps:0 so with
            | Upperbound.Unknown_after 0 -> ()
            | Upperbound.Unknown_after k ->
                Alcotest.failf "budget 0 but ran %d step(s)" k
            | Upperbound.Solvable_in k ->
                Alcotest.failf "SO cannot be %d-round solvable" k);
            match Upperbound.search ~max_steps:2 so with
            | Upperbound.Unknown_after 2 -> ()
            | Upperbound.Unknown_after k ->
                Alcotest.failf "budget 2 but stopped after %d step(s)" k
            | Upperbound.Solvable_in k ->
                Alcotest.failf "SO cannot be %d-round solvable" k);
        Alcotest.test_case "expand_limit budget verdict" `Quick (fun () ->
            (* A tiny expansion budget makes the first speedup step fail
               its guard, so a not-0-round-solvable problem must come
               back Unknown_after 0 instead of raising.  [~zdd:false]
               pins the explicit path: expand_limit is its guard — the
               symbolic rung never expands, so it does not consult it. *)
            let mis =
              Parse.problem ~name:"MIS" ~node:"M M M\nP O O" ~edge:"M [PO]\nO O"
            in
            match Upperbound.search ~max_steps:3 ~expand_limit:1. ~zdd:false mis with
            | Upperbound.Unknown_after 0 -> ()
            | Upperbound.Unknown_after k ->
                Alcotest.failf "budget verdict after %d step(s), expected 0" k
            | Upperbound.Solvable_in k ->
                Alcotest.failf "cannot certify Solvable_in %d without steps" k);
        Alcotest.test_case "pool and sequential agree" `Quick (fun () ->
            (* The search verdict is part of the engine's determinism
               contract: a parallel pool must reproduce the sequential
               answer exactly on every pinned problem. *)
            let pool = Parallel.Pool.create ~domains:3 in
            let problems =
              [
                Parse.problem ~name:"t" ~node:"A A A" ~edge:"A A";
                Parse.problem ~name:"SO" ~node:"O [IO]^2" ~edge:"O I";
                Parse.problem ~name:"p" ~node:"M M M\nP O O"
                  ~edge:"M [PO]\nO O";
              ]
            in
            List.iter
              (fun p ->
                let seq = Upperbound.search ~max_steps:2 p in
                let par = Upperbound.search ~max_steps:2 ~pool p in
                check_bool
                  (Printf.sprintf "verdict on %s" p.Problem.name)
                  true (seq = par))
              problems;
            Parallel.Pool.shutdown pool);
      ] );
  ]

let () =
  (* RELIM_CERTIFY=1 re-checks every engine output in this suite with
     the independent certifiers in lib/certify. *)
  Certify.Hooks.install_if_env ();
  (* RELIM_TRACE=<path> records an execution trace of the whole suite
     (the CI trace leg exercises this). *)
  Trace.setup_from_env ();
  Alcotest.run "relim" (main_suites @ extra_suites)
