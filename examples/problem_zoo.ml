(* A zoo of classic locally checkable problems, pushed through every
   engine feature: diagrams, zero-round deciders, speedup steps,
   fixed-point search, and label growth.  This is the "taxonomy of
   Section 1.2" in executable form:

   - trivially 0-round solvable problems stay solvable under speedup;
   - sinkless orientation is the canonical non-trivial fixed point
     (Omega(log n));
   - MIS / maximal matching blow up under naive iteration — the
     regime where the paper's constant-label family is needed.

   Run with:  dune exec examples/problem_zoo.exe                      *)

open Relim

let classify name (p : Problem.t) =
  Format.printf "@.--- %s (%d labels, Delta = %d) ---@." name
    (Problem.label_count p) (Problem.delta p);
  Format.printf "edge diagram: %a@." Diagram.pp (Diagram.edge_diagram p);
  (match Zeroround.solvable_arbitrary_ports p with
  | Some w ->
      Format.printf "0-round solvable (PN, arbitrary ports): yes, e.g. %s@."
        (Multiset.to_string p.alpha w)
  | None ->
      Format.printf "0-round solvable (PN, arbitrary ports): no@.";
      (match Zeroround.randomized_failure_bound p with
      | Some b -> Format.printf "randomized 0-round failure >= %g@." b
      | None -> ()));
  (match Fixedpoint.detect ~max_steps:3 p with
  | Fixedpoint.Fixed_point _ ->
      Format.printf "speedup: the problem is its own fixed point@."
  | Fixedpoint.Reaches_fixed_point (steps, fp) ->
      Format.printf "speedup: stabilizes after %d step(s) at %d labels" steps
        (Problem.label_count fp);
      (match Fixedpoint.lower_bound_statement (Fixedpoint.Reaches_fixed_point (steps, fp)) with
      | Some _ -> Format.printf " — non-trivial fixed point: Omega(log n)!@."
      | None -> Format.printf " (but 0-round solvable: no bound)@.")
  | Fixedpoint.No_fixed_point_found last ->
      Format.printf
        "speedup: no fixed point within budget; label growth to %d — the blow-up regime@."
        (Problem.label_count last)
  | exception (Budget.Budget_exceeded _ | Failure _) ->
      Format.printf "speedup: label budget exhausted — the blow-up regime@.")

let () =
  Format.printf "The locally checkable problem zoo@.";
  classify "trivial (everything allowed)"
    (Parse.problem ~name:"trivial" ~node:"A A A" ~edge:"A A");
  classify "sinkless orientation" (Lcl.Encodings.sinkless_orientation ~delta:3);
  classify "MIS" (Lcl.Encodings.mis ~delta:3);
  classify "maximal matching" (Lcl.Encodings.maximal_matching ~delta:3);
  classify "weak 2-coloring" (Lcl.Encodings.weak_2_coloring ~delta:3);
  classify "3-coloring (Delta = 2)" (Lcl.Encodings.coloring ~delta:2 ~colors:3);
  classify "the paper's Pi(a=3, x=1) at Delta = 4"
    (Core.Family.pi { Core.Family.delta = 4; a = 3; x = 1 });
  Format.printf
    "@.Summary: problems in the blow-up regime are exactly where the paper's@.";
  Format.printf
    "constant-label family technique (Sections 1.2 and 3) earns its keep.@."
